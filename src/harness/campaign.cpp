#include "harness/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "harness/executor.hpp"
#include "harness/golden_cache.hpp"
#include "simmpi/rank_team.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace resilience::harness {

namespace {

/// Draw the injection plan of one trial: a target rank plus
/// `errors_per_test` distinct dynamic-op indices in that rank's filtered
/// op stream, each with a random bit and operand.
std::pair<int, fsefi::InjectionPlan> draw_plan(
    const DeploymentConfig& cfg, const GoldenRun& golden,
    const std::vector<std::uint64_t>& rank_ops, std::uint64_t total_ops,
    util::Xoshiro256& rng) {
  // Pick the target rank.
  int target = 0;
  if (cfg.selection == TargetSelection::UniformInstruction) {
    std::uint64_t pick = rng.uniform_below(total_ops);
    for (int r = 0; r < cfg.nranks; ++r) {
      const std::uint64_t ops = rank_ops[static_cast<std::size_t>(r)];
      if (pick < ops) {
        target = r;
        break;
      }
      pick -= ops;
    }
  } else {
    // Uniform over ranks with a non-empty sample space.
    std::vector<int> eligible;
    for (int r = 0; r < cfg.nranks; ++r) {
      if (rank_ops[static_cast<std::size_t>(r)] >=
          static_cast<std::uint64_t>(cfg.errors_per_test)) {
        eligible.push_back(r);
      }
    }
    if (eligible.empty()) {
      throw std::runtime_error("no rank has enough eligible operations");
    }
    target = eligible[rng.uniform_below(eligible.size())];
  }

  const std::uint64_t ops = rank_ops[static_cast<std::size_t>(target)];
  const auto x = static_cast<std::uint64_t>(cfg.errors_per_test);
  if (ops < x) {
    throw std::runtime_error("target rank has fewer eligible ops than errors");
  }
  std::vector<std::uint64_t> indices = rng.sample_distinct(ops, x);
  std::sort(indices.begin(), indices.end());

  fsefi::InjectionPlan plan;
  plan.kinds = cfg.kinds;
  plan.regions = cfg.regions;
  plan.points.reserve(indices.size());
  for (std::uint64_t idx : indices) {
    // Expand the deployment's fault pattern into injection points at this
    // dynamic operation.
    const auto operand = static_cast<std::uint8_t>(rng.uniform_below(2));
    switch (cfg.pattern) {
      case fsefi::FaultPattern::SingleBit:
        plan.points.push_back(
            {idx, operand, static_cast<std::uint8_t>(rng.uniform_below(64)),
             1});
        break;
      case fsefi::FaultPattern::DoubleBit: {
        // Two distinct random bits of the same operand.
        const auto bits = rng.sample_distinct(64, 2);
        for (auto bit : bits) {
          plan.points.push_back(
              {idx, operand, static_cast<std::uint8_t>(bit), 1});
        }
        break;
      }
      case fsefi::FaultPattern::Burst4:
        plan.points.push_back(
            {idx, operand, static_cast<std::uint8_t>(rng.uniform_below(61)),
             4});
        break;
    }
  }
  (void)golden;
  return {target, std::move(plan)};
}

}  // namespace

const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::Success:
      return "Success";
    case Outcome::SDC:
      return "SDC";
    case Outcome::Failure:
      return "Failure";
  }
  return "?";
}

double signature_deviation(const std::vector<double>& a,
                           const std::vector<double>& b, double floor) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i])) return std::numeric_limits<double>::infinity();
    const double scale = std::max(std::abs(b[i]), floor);
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

Outcome CampaignRunner::classify(const RunOutput& out,
                                 const std::vector<double>& golden_signature,
                                 double tolerance) {
  if (!out.runtime.ok || !out.result.has_value()) return Outcome::Failure;
  const auto& sig = out.result->signature;
  if (sig == golden_signature) return Outcome::Success;  // bit-identical
  const double dev = signature_deviation(sig, golden_signature);
  // "Different from the fault-free run but passes the application
  // checkers" (paper Success case 1).
  return dev <= tolerance ? Outcome::Success : Outcome::SDC;
}

std::vector<double> CampaignResult::propagation_probabilities() const {
  std::size_t injected_total = 0;
  for (std::size_t x = 1; x < contamination_hist.size(); ++x) {
    injected_total += contamination_hist[x];
  }
  std::vector<double> r(static_cast<std::size_t>(config.nranks), 0.0);
  if (injected_total == 0) return r;
  for (std::size_t x = 1; x < contamination_hist.size(); ++x) {
    r[x - 1] = static_cast<double>(contamination_hist[x]) /
               static_cast<double>(injected_total);
  }
  return r;
}

CampaignResult CampaignRunner::run(const apps::App& app,
                                   const DeploymentConfig& cfg) {
  return run(app, cfg, CampaignContext{});
}

CampaignResult CampaignRunner::run(const apps::App& app,
                                   const DeploymentConfig& cfg,
                                   const CampaignContext& context) {
  if (cfg.errors_per_test < 1) {
    throw std::invalid_argument("errors_per_test must be >= 1");
  }
  // The campaign's accounting domain. Every count below — whether from
  // this thread, an executor worker running a trial chunk, or a rank
  // thread inside a job — lands here; totals roll up into the study's
  // scope (if any) when this scope dies.
  telemetry::MetricScope metrics(context.metrics_parent);
  telemetry::TraceSpan span("harness", "campaign", "trials", cfg.trials);

  CampaignResult result;
  result.config = cfg;
  {
    telemetry::ScopeGuard guard(&metrics);
    telemetry::count(telemetry::Counter::HarnessCampaigns);
    if (context.golden_cache != nullptr) {
      result.golden = *context.golden_cache->get_or_profile(
          app, cfg.nranks, cfg.deadlock_timeout, context.executor);
    } else {
      result.golden = profile_app(app, cfg.nranks, cfg.deadlock_timeout);
      telemetry::count(telemetry::Counter::HarnessGoldenProfiles);
    }
  }

  std::vector<std::uint64_t> rank_ops;
  rank_ops.reserve(result.golden.profiles.size());
  std::uint64_t total_ops = 0;
  for (const auto& prof : result.golden.profiles) {
    rank_ops.push_back(prof.matching(cfg.kinds, cfg.regions));
    total_ops += rank_ops.back();
  }
  if (total_ops == 0) {
    throw std::runtime_error(app.label() +
                             ": no dynamic operations match the deployment's "
                             "kind/region filters");
  }

  RunOptions run_opts;
  run_opts.deadlock_timeout = cfg.deadlock_timeout;
  run_opts.op_budget = static_cast<std::uint64_t>(
                           cfg.hang_budget_factor *
                           static_cast<double>(result.golden.max_rank_ops)) +
                       cfg.hang_budget_slack;
  // Trial fast-forward (DESIGN.md §9): hand every trial the boundary
  // checkpoints the golden pre-pass captured. Null when the kill switch
  // was off at capture time.
  if (checkpoint_enabled() && result.golden.checkpoints != nullptr) {
    run_opts.checkpoints = result.golden.checkpoints.get();
  }

  result.contamination_hist.assign(static_cast<std::size_t>(cfg.nranks) + 1,
                                   0);
  result.by_contamination.assign(static_cast<std::size_t>(cfg.nranks) + 1,
                                 FaultInjectionResult{});

  // One trial, seeded from its index: the unit of work both execution
  // paths share, which is what keeps them bit-identical.
  struct TrialOutcome {
    Outcome outcome = Outcome::Failure;
    int contaminated = -1;
  };
  auto run_trial = [&](std::size_t trial) -> TrialOutcome {
    // Per-trial scope push: the calling thread may be this function's
    // thread (inline path) or an executor worker (chunked path); either
    // way the trial's counts must land in this campaign's scope.
    telemetry::ScopeGuard guard(&metrics);
    telemetry::TraceSpan trial_span("harness", "trial", "index", trial);
    util::Xoshiro256 rng(util::derive_seed(cfg.seed, trial));
    auto [target, plan] =
        draw_plan(cfg, result.golden, rank_ops, total_ops, rng);
    std::vector<fsefi::InjectionPlan> plans(
        static_cast<std::size_t>(cfg.nranks));
    plans[static_cast<std::size_t>(target)] = std::move(plan);
    const RunOutput out = run_app_once(app, cfg.nranks, plans, run_opts);
    telemetry::count(telemetry::Counter::HarnessTrials);
    if (out.checkpoint_restored) {
      telemetry::count(telemetry::Counter::HarnessCheckpointRestores);
      telemetry::trace_instant(
          "harness", "checkpoint_restore", "iteration",
          static_cast<std::uint64_t>(out.resume_iteration));
    }
    if (out.early_exit) {
      telemetry::count(telemetry::Counter::HarnessEarlyExits);
      telemetry::trace_instant("harness", "early_exit");
    }
    if (out.hang) {
      telemetry::count(telemetry::Counter::HarnessHangAborts);
    } else if (out.runtime.deadlocked) {
      telemetry::count(telemetry::Counter::HarnessDeadlockAborts);
      telemetry::trace_instant("harness", "deadlock_abort");
    }
    const int contaminated = out.contaminated_ranks();
    if (contaminated >= 0) {
      telemetry::record(telemetry::Histogram::HarnessContaminatedRanks,
                        static_cast<std::uint64_t>(contaminated));
    }
    if (out.runtime.ok) {
      // Only clean completions: the op totals of a torn-down job depend on
      // where the surviving ranks happened to stop, and histograms take
      // part in the logical-determinism contract.
      std::uint64_t trial_ops = 0;
      for (const auto& prof : out.profiles) trial_ops += prof.total();
      telemetry::record(telemetry::Histogram::HarnessTrialOps, trial_ops);
    }
    return {classify(out, result.golden.signature, app.checker_tolerance()),
            contaminated};
  };

  std::vector<TrialOutcome> outcomes(cfg.trials);

  Executor* executor = context.executor;
  std::unique_ptr<Executor> local_executor;
  if (executor == nullptr && cfg.trials > 1) {
    const int workers = Executor::resolve_workers(cfg.max_workers);
    if (workers > 1) {
      local_executor = std::make_unique<Executor>(workers);
      executor = local_executor.get();
    }
  }

  // The thread footprint of one trial's job: nranks in threads mode, the
  // resolved fiber-worker count in fibers mode. Both the rank-team
  // prewarm width and the executor admission weight follow it.
  const int width = simmpi::Runtime::job_width(cfg.nranks);

  if (executor != nullptr && width > 1 && simmpi::RankTeamPool::enabled()) {
    // Pay the rank-team thread spawns before the timed trial loop: each
    // concurrently running trial checks out its own team of this width.
    telemetry::ScopeGuard guard(&metrics);
    const int concurrent = std::max(1, executor->workers() / width);
    simmpi::RankTeamPool::instance().prewarm(width, concurrent);
  }

  if (executor == nullptr) {
    // Inline path (max_workers == 1): no pool, no extra threads.
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      outcomes[trial] = run_trial(trial);
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  } else {
    // Contiguous chunks, several per worker: large enough to amortise
    // queueing, small enough that the tail stays balanced.
    const std::size_t chunk_target =
        static_cast<std::size_t>(executor->workers()) * 4;
    const std::size_t nchunks = std::min(cfg.trials, std::max<std::size_t>(
                                                         chunk_target, 1));
    const std::size_t chunk = (cfg.trials + nchunks - 1) / nchunks;
    std::vector<double> chunk_seconds(nchunks, 0.0);
    std::vector<Executor::Task> tasks;
    tasks.reserve(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, cfg.trials);
      if (lo >= hi) break;
      tasks.push_back({width, [&, c, lo, hi] {
                         const auto start = std::chrono::steady_clock::now();
                         for (std::size_t trial = lo; trial < hi; ++trial) {
                           outcomes[trial] = run_trial(trial);
                         }
                         chunk_seconds[c] =
                             std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
                       }});
    }
    executor->run(std::move(tasks));
    // Serial-equivalent injection time: execution spans summed across
    // workers, in chunk order so the sum itself is reproducible.
    for (double s : chunk_seconds) result.wall_seconds += s;
  }

  // Merge in trial order — the parallel path stays bit-identical to the
  // serial one no matter how chunks were scheduled.
  for (const TrialOutcome& t : outcomes) {
    result.overall.add(t.outcome);
    if (t.contaminated >= 0 &&
        t.contaminated < static_cast<int>(result.contamination_hist.size())) {
      result.contamination_hist[static_cast<std::size_t>(t.contaminated)] += 1;
      result.by_contamination[static_cast<std::size_t>(t.contaminated)].add(
          t.outcome);
    }
  }
  // Workers have quiesced (executor->run returned / inline loop ended):
  // the merge is exact. The scope's destructor then rolls these totals up
  // into the study scope, if any.
  result.metrics = metrics.snapshot();
  return result;
}

}  // namespace resilience::harness
