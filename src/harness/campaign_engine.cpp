#include "harness/campaign_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace resilience::harness {

namespace {

/// Draw the bit positions of one fault of `pattern`, calling
/// emit(bit, width) once per flip. RankCrash emits nothing: the fault is
/// the rank's death, not a flip.
template <typename Emit>
void expand_bits(fsefi::FaultPattern pattern, util::Xoshiro256& rng,
                 Emit&& emit) {
  switch (pattern) {
    case fsefi::FaultPattern::SingleBit:
      emit(static_cast<std::uint8_t>(rng.uniform_below(64)), 1);
      break;
    case fsefi::FaultPattern::DoubleBit: {
      // Two distinct random bits of the same target.
      const auto bits = rng.sample_distinct(64, 2);
      for (auto bit : bits) emit(static_cast<std::uint8_t>(bit), 1);
      break;
    }
    case fsefi::FaultPattern::Burst4:
      emit(static_cast<std::uint8_t>(rng.uniform_below(61)), 4);
      break;
    case fsefi::FaultPattern::Byte:
      emit(static_cast<std::uint8_t>(8 * rng.uniform_below(8)), 8);
      break;
    case fsefi::FaultPattern::RankCrash:
      break;
  }
}

/// Append the injection points of one drawn dynamic-op index, expanding
/// the scenario's fault pattern. The draw order — operand first, then the
/// bit positions — is the pre-scenario order, so legacy campaigns replay
/// bit-identically. RankCrash marks the death op without consuming any
/// draws.
void expand_register(const fsefi::FaultScenario& sc, std::uint64_t idx,
                     util::Xoshiro256& rng, fsefi::InjectionPlan& plan) {
  if (sc.pattern == fsefi::FaultPattern::RankCrash) {
    plan.points.push_back({idx, 0, 0, 0});
    return;
  }
  const auto operand = static_cast<std::uint8_t>(rng.uniform_below(2));
  expand_bits(sc.pattern, rng, [&](std::uint8_t bit, std::uint8_t width) {
    plan.points.push_back({idx, operand, bit, width});
  });
}

/// Append payload faults at one delivered-Real index (no operand: the
/// flip lands on the element as delivered).
void expand_payload(const fsefi::FaultScenario& sc, std::uint64_t idx,
                    util::Xoshiro256& rng, fsefi::InjectionPlan& plan) {
  expand_bits(sc.pattern, rng, [&](std::uint8_t bit, std::uint8_t width) {
    plan.payload_points.push_back({idx, 0, bit, width});
  });
}

/// Append resident-state faults on one (boundary, element) cell.
void expand_state(const fsefi::FaultScenario& sc, std::int32_t boundary,
                  std::uint64_t element, util::Xoshiro256& rng,
                  fsefi::InjectionPlan& plan) {
  expand_bits(sc.pattern, rng, [&](std::uint8_t bit, std::uint8_t width) {
    plan.state_faults.push_back({boundary, element, bit, width});
  });
}

/// Count of one outcome in a tally, by outcome ordinal (0 = Success,
/// 1 = SDC, 2 = Failure) — the iteration order the adaptive stop rule
/// uses.
std::size_t outcome_count(const FaultInjectionResult& tally,
                          int ordinal) noexcept {
  switch (ordinal) {
    case 0:
      return tally.success;
    case 1:
      return tally.sdc;
    default:
      return tally.failure;
  }
}

}  // namespace

TrialSpace::TrialSpace(const apps::App& app, const DeploymentConfig& config,
                       const GoldenRun& golden)
    : app_(app), config_(config), golden_(golden) {
  const fsefi::FaultScenario& sc = config_.scenario;
  if (sc.crash()) {
    if (sc.domain != fsefi::FaultDomain::RegisterOperand) {
      throw std::invalid_argument(
          "rank-crash faults are register-domain: the rank dies at a drawn "
          "dynamic op");
    }
    if (sc.arrival != fsefi::ArrivalModel::FixedOpIndex) {
      throw std::invalid_argument(
          "rank-crash scenarios use FixedOpIndex arrival (only the first "
          "fault of a timeline could ever fire)");
    }
  }
  if (sc.domain == fsefi::FaultDomain::ResidentState &&
      sc.arrival == fsefi::ArrivalModel::PoissonTimeline) {
    throw std::invalid_argument(
        "resident-state faults strike at iteration boundaries, not on an "
        "op timeline: use FixedOpIndex arrival");
  }
  if (sc.domain != fsefi::FaultDomain::RegisterOperand &&
      config_.selection == TargetSelection::UniformRank) {
    throw std::invalid_argument(
        "UniformRank selection is defined on the register domain only");
  }
  if (sc.arrival == fsefi::ArrivalModel::PoissonTimeline &&
      !(sc.mtbf_factor > 0.0)) {
    throw std::invalid_argument("mtbf_factor must be > 0");
  }

  // The per-rank sample-space sizes of the scenario's domain; every
  // drawing path weights its rank pick by these.
  switch (sc.domain) {
    case fsefi::FaultDomain::RegisterOperand:
      rank_ops_.reserve(golden_.profiles.size());
      for (const auto& prof : golden_.profiles) {
        rank_ops_.push_back(prof.matching(sc.kinds, sc.regions));
        total_ops_ += rank_ops_.back();
      }
      if (total_ops_ == 0) {
        throw std::runtime_error(
            app_.label() +
            ": no dynamic operations match the deployment's "
            "kind/region filters");
      }
      break;
    case fsefi::FaultDomain::MessagePayload:
      if (golden_.recv_reals.size() != golden_.profiles.size()) {
        throw std::runtime_error(
            app_.label() +
            ": golden run carries no delivered-Real counts (re-profile to "
            "run message-payload scenarios)");
      }
      rank_ops_ = golden_.recv_reals;
      for (const std::uint64_t n : rank_ops_) total_ops_ += n;
      if (total_ops_ == 0) {
        throw std::runtime_error(
            app_.label() + ": no Real elements are delivered by receives");
      }
      break;
    case fsefi::FaultDomain::ResidentState: {
      if (golden_.checkpoints == nullptr ||
          golden_.checkpoints->boundaries.empty() ||
          golden_.checkpoints->state_reals.size() !=
              golden_.profiles.size()) {
        throw std::runtime_error(
            app_.label() +
            ": golden run recorded no boundary state (resident-state "
            "scenarios need a checkpoint-capturing golden pre-pass)");
      }
      state_boundaries_ = golden_.checkpoints->boundaries.size();
      rank_ops_ = golden_.checkpoints->state_reals;
      for (const std::uint64_t n : rank_ops_) total_ops_ += n;
      if (total_ops_ == 0) {
        throw std::runtime_error(app_.label() +
                                 ": live-state views hold no Real elements");
      }
      break;
    }
  }

  run_opts_.deadlock_timeout = config_.deadlock_timeout;
  run_opts_.op_budget = static_cast<std::uint64_t>(
                            config_.hang_budget_factor *
                            static_cast<double>(golden_.max_rank_ops)) +
                        config_.hang_budget_slack;
  // Trial fast-forward (DESIGN.md §9): hand every trial the boundary
  // checkpoints the golden pre-pass captured. Null when the kill switch
  // was off at capture time.
  if (checkpoint_enabled() && golden_.checkpoints != nullptr) {
    run_opts_.checkpoints = golden_.checkpoints.get();
  }

  // Stratification needs single-error register-domain fixed-arrival
  // UniformInstruction deployments: decile ranges are defined on single
  // filtered-op indices, multi-error distinct draws do not decompose into
  // independent strata, and the other domains/arrivals sample different
  // spaces entirely.
  const AdaptiveConfig& ad = config_.adaptive;
  const bool want_strata =
      ad.enabled && ad.stratify && config_.errors_per_test == 1 &&
      config_.selection == TargetSelection::UniformInstruction &&
      sc.domain == fsefi::FaultDomain::RegisterOperand &&
      sc.arrival == fsefi::ArrivalModel::FixedOpIndex && !sc.crash() &&
      ad.deciles >= 1;
  if (!want_strata) return;
  for (int r = 0; r < fsefi::kNumRegions; ++r) {
    if (!fsefi::contains(sc.regions, static_cast<fsefi::Region>(r)))
      continue;
    for (int k = 0; k < fsefi::kNumOpKinds; ++k) {
      if (!fsefi::contains(sc.kinds, static_cast<fsefi::OpKind>(k)))
        continue;
      for (int d = 0; d < ad.deciles; ++d) {
        StratumInfo s;
        s.stratum = {static_cast<fsefi::Region>(r),
                     static_cast<fsefi::OpKind>(k), d, ad.deciles};
        s.id = fsefi::stratum_index(s.stratum);
        s.rank_pop.reserve(golden_.profiles.size());
        for (const auto& prof : golden_.profiles) {
          const std::uint64_t pop = fsefi::stratum_population(prof, s.stratum);
          s.rank_pop.push_back(pop);
          s.population += pop;
        }
        if (s.population == 0) continue;  // nothing to hit: drop
        s.weight = static_cast<double>(s.population) /
                   static_cast<double>(total_ops_);
        strata_.push_back(std::move(s));
      }
    }
  }
  // Grid ids are small (region x kind x decile), so a dense table maps
  // a ref's stratum id back to its slot.
  std::uint64_t max_id = 0;
  for (const auto& s : strata_) max_id = std::max(max_id, s.id);
  stratum_by_id_.assign(static_cast<std::size_t>(max_id) + 1,
                        ~std::size_t{0});
  for (std::size_t i = 0; i < strata_.size(); ++i) {
    stratum_by_id_[static_cast<std::size_t>(strata_[i].id)] = i;
  }
}

std::size_t TrialSpace::stratum_slot(std::uint64_t id) const {
  if (id >= stratum_by_id_.size() ||
      stratum_by_id_[static_cast<std::size_t>(id)] == ~std::size_t{0}) {
    throw std::out_of_range("no populated stratum with grid id " +
                            std::to_string(id));
  }
  return stratum_by_id_[static_cast<std::size_t>(id)];
}

TrialResult TrialSpace::run(const TrialRef& ref) const {
  const fsefi::FaultScenario& sc = config_.scenario;
  if (ref.stratum == kNoStratum) {
    // Uniform drawing, seeded from the global trial index — the
    // fixed-mode stream (and the adaptive engine's fallback when it
    // cannot stratify).
    util::Xoshiro256 rng(util::derive_seed(config_.seed, ref.index));
    if (sc.arrival == fsefi::ArrivalModel::PoissonTimeline) {
      return run_poisson(ref.tag, rng);
    }
    // Fixed arrival: draw a target rank (weighted by its share of the
    // domain's sample space) plus `errors_per_test` distinct indices in
    // that rank's stream.
    int target = 0;
    if (config_.selection == TargetSelection::UniformInstruction) {
      std::uint64_t pick = rng.uniform_below(total_ops_);
      for (int r = 0; r < config_.nranks; ++r) {
        const std::uint64_t ops = rank_ops_[static_cast<std::size_t>(r)];
        if (pick < ops) {
          target = r;
          break;
        }
        pick -= ops;
      }
    } else {
      // Uniform over ranks with a non-empty sample space.
      std::vector<int> eligible;
      for (int r = 0; r < config_.nranks; ++r) {
        if (rank_ops_[static_cast<std::size_t>(r)] >=
            static_cast<std::uint64_t>(config_.errors_per_test)) {
          eligible.push_back(r);
        }
      }
      if (eligible.empty()) {
        throw std::runtime_error("no rank has enough eligible operations");
      }
      target = eligible[rng.uniform_below(eligible.size())];
    }

    const std::uint64_t ops = rank_ops_[static_cast<std::size_t>(target)];
    const auto x = static_cast<std::uint64_t>(config_.errors_per_test);

    fsefi::InjectionPlan plan;
    plan.kinds = sc.kinds;
    plan.regions = sc.regions;
    plan.crash = sc.crash();

    if (sc.domain == fsefi::FaultDomain::ResidentState) {
      // The rank's cells are the (boundary, element) product; distinct
      // draws sorted ascending come out boundary-major, which is the
      // sort order state_faults require.
      const std::uint64_t cells = state_boundaries_ * ops;
      if (cells < x) {
        throw std::runtime_error(
            "target rank has fewer state cells than errors");
      }
      std::vector<std::uint64_t> draws = rng.sample_distinct(cells, x);
      std::sort(draws.begin(), draws.end());
      for (std::uint64_t c : draws) {
        const auto& rec =
            golden_.checkpoints->boundaries[static_cast<std::size_t>(c / ops)];
        expand_state(sc, rec.iter, c % ops, rng, plan);
      }
      return execute(ref.tag, target, std::move(plan));
    }

    if (ops < x) {
      throw std::runtime_error(
          "target rank has fewer eligible ops than errors");
    }
    std::vector<std::uint64_t> indices = rng.sample_distinct(ops, x);
    std::sort(indices.begin(), indices.end());
    for (std::uint64_t idx : indices) {
      if (sc.domain == fsefi::FaultDomain::MessagePayload) {
        expand_payload(sc, idx, rng, plan);
      } else {
        expand_register(sc, idx, rng, plan);
      }
    }
    return execute(ref.tag, target, std::move(plan));
  }

  // A stratified trial: rank weighted by its share of the stratum, then a
  // uniform op index inside that rank's decile range of the (region,
  // kind) cell stream. The plan narrows its filters to the single cell,
  // so op_index counts within the cell's own dynamic stream. Seeded from
  // (stratum grid id, index-within-stratum): independent of batch
  // boundaries and allocation history.
  const StratumInfo& s = strata_[stratum_slot(ref.stratum)];
  util::Xoshiro256 rng(util::derive_seed(config_.seed, s.id, ref.index));
  std::uint64_t pick = rng.uniform_below(s.population);
  int target = 0;
  for (int r = 0; r < config_.nranks; ++r) {
    const std::uint64_t pop = s.rank_pop[static_cast<std::size_t>(r)];
    if (pick < pop) {
      target = r;
      break;
    }
    pick -= pop;
  }
  const auto& prof = golden_.profiles[static_cast<std::size_t>(target)];
  const std::uint64_t cell = prof.counts[static_cast<int>(s.stratum.region)]
                                        [static_cast<int>(s.stratum.kind)];
  const auto [lo, hi] =
      fsefi::decile_range(cell, s.stratum.decile, s.stratum.ndeciles);
  fsefi::InjectionPlan plan;
  plan.kinds = s.stratum.kinds();
  plan.regions = s.stratum.regions();
  expand_register(sc, lo + rng.uniform_below(hi - lo), rng, plan);
  return execute(ref.tag, target, std::move(plan));
}

TrialResult TrialSpace::run_poisson(std::uint64_t tag,
                                    util::Xoshiro256& rng) const {
  const fsefi::FaultScenario& sc = config_.scenario;
  // The trial's timeline is the concatenated per-rank sample-space
  // streams: T "ticks", one per eligible op (register) or delivered Real
  // (payload). MTBF is a fraction of the trial length, so the expected
  // fault count is scale-free.
  const double horizon = static_cast<double>(total_ops_);
  const double mtbf = sc.mtbf_factor * horizon;
  std::vector<std::uint64_t> arrivals;
  // First arrival from the exponential truncated to (0, horizon):
  // conditioning the trial on >= 1 fault. log1p keeps precision when
  // horizon/mtbf is small and the truncation mass is tiny.
  const double mass = -std::expm1(-horizon / mtbf);
  double t = -mtbf * std::log1p(-rng.uniform01() * mass);
  for (;;) {
    const auto tick = static_cast<std::uint64_t>(t);
    arrivals.push_back(tick < total_ops_ ? tick : total_ops_ - 1);
    t += -mtbf * std::log1p(-rng.uniform01());
    if (!(t < horizon)) break;
  }

  std::vector<fsefi::InjectionPlan> plans(
      static_cast<std::size_t>(config_.nranks));
  for (fsefi::InjectionPlan& plan : plans) {
    plan.kinds = sc.kinds;
    plan.regions = sc.regions;
  }
  for (const std::uint64_t global : arrivals) {
    telemetry::trace_instant("scenario", "timeline_arrival", "op", global);
    std::uint64_t local = global;
    int rank = 0;
    for (int r = 0; r < config_.nranks; ++r) {
      const std::uint64_t ops = rank_ops_[static_cast<std::size_t>(r)];
      if (local < ops) {
        rank = r;
        break;
      }
      local -= ops;
    }
    fsefi::InjectionPlan& plan = plans[static_cast<std::size_t>(rank)];
    if (sc.domain == fsefi::FaultDomain::MessagePayload) {
      expand_payload(sc, local, rng, plan);
    } else {
      expand_register(sc, local, rng, plan);
    }
  }
  return execute(tag, std::move(plans));
}

TrialResult TrialSpace::execute(std::uint64_t tag, int target,
                                fsefi::InjectionPlan plan) const {
  std::vector<fsefi::InjectionPlan> plans(
      static_cast<std::size_t>(config_.nranks));
  plans[static_cast<std::size_t>(target)] = std::move(plan);
  return execute(tag, std::move(plans));
}

TrialResult TrialSpace::execute(
    std::uint64_t tag, std::vector<fsefi::InjectionPlan> plans) const {
  telemetry::TraceSpan trial_span("harness", "trial", "index", tag);
  const RunOutput out = run_app_once(app_, config_.nranks, plans, run_opts_);
  telemetry::count(telemetry::Counter::HarnessTrials);
  if (out.checkpoint_restored) {
    telemetry::count(telemetry::Counter::HarnessCheckpointRestores);
    telemetry::trace_instant("harness", "checkpoint_restore", "iteration",
                             static_cast<std::uint64_t>(out.resume_iteration));
  }
  if (out.early_exit) {
    telemetry::count(telemetry::Counter::HarnessEarlyExits);
    telemetry::trace_instant("harness", "early_exit");
  }
  if (out.hang) {
    telemetry::count(telemetry::Counter::HarnessHangAborts);
  } else if (out.runtime.deadlocked) {
    telemetry::count(telemetry::Counter::HarnessDeadlockAborts);
    telemetry::trace_instant("harness", "deadlock_abort");
  }
  const int contaminated = out.contaminated_ranks();
  if (contaminated >= 0) {
    telemetry::record(telemetry::Histogram::HarnessContaminatedRanks,
                      static_cast<std::uint64_t>(contaminated));
  }
  if (out.runtime.ok) {
    // Only clean completions: the op totals of a torn-down job depend on
    // where the surviving ranks happened to stop, and histograms take
    // part in the logical-determinism contract.
    std::uint64_t trial_ops = 0;
    for (const auto& prof : out.profiles) trial_ops += prof.total();
    telemetry::record(telemetry::Histogram::HarnessTrialOps, trial_ops);
  }
  return {CampaignRunner::classify(out, golden_.signature,
                                   app_.checker_tolerance()),
          contaminated};
}

AdaptiveDriver::AdaptiveDriver(const DeploymentConfig& config,
                               const TrialSpace& space)
    : config_(config),
      space_(space),
      cap_(config.trials),
      batch_size_(std::max<std::size_t>(1, config.adaptive.batch)),
      min_trials_(
          std::min(std::max<std::size_t>(1, config.adaptive.min_trials), cap_)),
      use_strata_(space.stratified()) {
  tallies_.resize(space_.strata().size());
  for (Tally& t : tallies_) {
    t.hist.assign(static_cast<std::size_t>(config_.nranks) + 1, 0);
  }
}

std::vector<TrialRef> AdaptiveDriver::next_batch() {
  if (stopped_ || executed_ >= cap_) return {};
  const std::size_t n = std::min(batch_size_, cap_ - executed_);
  std::vector<TrialRef> refs;
  refs.reserve(n);
  if (use_strata_) {
    const auto& strata = space_.strata();
    const auto alloc = allocate(n);
    for (std::size_t i = 0; i < strata.size(); ++i) {
      for (std::size_t a = 0; a < alloc[i]; ++a) {
        refs.push_back({strata[i].id, tallies_[i].drawn + a, 0});
      }
      tallies_[i].drawn += alloc[i];
    }
  } else {
    for (std::size_t t = 0; t < n; ++t) {
      refs.push_back({kNoStratum, executed_ + t, 0});
    }
  }
  for (std::size_t p = 0; p < refs.size(); ++p) refs[p].tag = executed_ + p;
  return refs;
}

void AdaptiveDriver::fold(const std::vector<TrialRef>& refs,
                          const std::vector<TrialResult>& results) {
  // Merge in (stratum, index) order — fixed before the batch ran.
  for (std::size_t i = 0; i < refs.size(); ++i) {
    overall_.add(results[i].outcome);
    if (use_strata_) {
      Tally& t = tallies_[space_.stratum_slot(refs[i].stratum)];
      t.tally.add(results[i].outcome);
      const int c = results[i].contaminated;
      if (c >= 0 && c < static_cast<int>(t.hist.size())) {
        t.hist[static_cast<std::size_t>(c)] += 1;
      }
    }
  }
  executed_ += refs.size();

  bool covered = true;
  if (use_strata_) {
    for (const Tally& t : tallies_) covered = covered && t.tally.trials > 0;
  }
  compute_envelope(covered);
  if (executed_ >= min_trials_ && covered) {
    bool converged = true;
    for (const auto& iv : envelope_) {
      converged = converged && iv.half_width() <= target_half_width(iv.rate);
    }
    if (converged) {
      stop_ = StopReason::Converged;
      stopped_ = true;
    }
  }
}

// Per-batch allocation: one trial to every still-unsampled stratum
// first (largest population first — the stop rule cannot fire until
// every live stratum has data), then largest-remainder apportionment of
// the rest by W_s * sqrt(v_s) — proportional on the first batch (all
// v_s equal) and Neyman-refined once per-stratum variance is observed.
std::vector<std::size_t> AdaptiveDriver::allocate(std::size_t n) {
  const auto& strata = space_.strata();
  std::vector<std::size_t> alloc(strata.size(), 0);
  std::vector<std::size_t> order(strata.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (strata[a].population != strata[b].population)
      return strata[a].population > strata[b].population;
    return strata[a].id < strata[b].id;
  });
  for (std::size_t i : order) {
    if (n == 0) break;
    if (tallies_[i].drawn + alloc[i] == 0) {
      alloc[i] += 1;
      --n;
    }
  }
  if (n == 0) return alloc;
  std::vector<double> w(strata.size(), 0.0);
  double wsum = 0.0;
  for (std::size_t i = 0; i < strata.size(); ++i) {
    const Tally& t = tallies_[i];
    // Multinomial spread sum_o p_o(1 - p_o), shrunk toward the center
    // ((k+2)/(n+4)) so a handful of same-outcome trials cannot zero a
    // stratum out of the allocation; 2/3 (the maximal spread) until a
    // stratum has enough data to say otherwise.
    double v = 2.0 / 3.0;
    if (t.tally.trials >= 8) {
      v = 0.0;
      const double ns = static_cast<double>(t.tally.trials);
      for (int o = 0; o < 3; ++o) {
        const double pv =
            (static_cast<double>(outcome_count(t.tally, o)) + 2.0) / (ns + 4.0);
        v += pv * (1.0 - pv);
      }
      v = std::max(v, 1e-4);  // converged strata keep a trickle share
    }
    w[i] = strata[i].weight * std::sqrt(v);
    wsum += w[i];
  }
  std::vector<std::pair<double, std::size_t>> frac;
  frac.reserve(strata.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < strata.size(); ++i) {
    const double quota = static_cast<double>(n) * w[i] / wsum;
    const auto base = static_cast<std::size_t>(quota);
    alloc[i] += base;
    assigned += base;
    frac.emplace_back(quota - static_cast<double>(base), i);
  }
  std::sort(frac.begin(), frac.end(), [&](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return strata[a.second].id < strata[b.second].id;
  });
  for (std::size_t r = 0; assigned < n; ++r) {
    alloc[frac[r % frac.size()].second] += 1;
    ++assigned;
  }
  return alloc;
}

// Rate estimate + CI per outcome on the current tallies. Post-
// stratified when strata are in play and all are covered; exact
// Clopper–Pearson bounds (widened to contain the post-stratified
// point) on the rare tail, where the normal approximations under-cover.
void AdaptiveDriver::compute_envelope(bool covered) {
  const AdaptiveConfig& ad = config_.adaptive;
  const auto& strata = space_.strata();
  const std::size_t n_total = overall_.trials;
  for (int o = 0; o < 3; ++o) {
    const std::size_t k = outcome_count(overall_, o);
    double est = n_total == 0
                     ? 0.0
                     : static_cast<double>(k) / static_cast<double>(n_total);
    double strat_var = 0.0;
    if (use_strata_ && covered) {
      est = 0.0;
      for (std::size_t i = 0; i < strata.size(); ++i) {
        const double ns = static_cast<double>(tallies_[i].tally.trials);
        const double ks =
            static_cast<double>(outcome_count(tallies_[i].tally, o));
        // Shrunk rate in the variance term only: guards the
        // zero-variance trap of small all-same-outcome samples.
        const double pv = (ks + 2.0) / (ns + 4.0);
        est += strata[i].weight * (ks / ns);
        strat_var += strata[i].weight * strata[i].weight * pv * (1.0 - pv) / ns;
      }
    }
    const double pooled =
        n_total == 0 ? 0.0
                     : static_cast<double>(k) / static_cast<double>(n_total);
    const std::size_t complement = n_total - k;
    const bool rare = pooled < ad.rare_threshold ||
                      1.0 - pooled < ad.rare_threshold ||
                      std::min(k, complement) < 8;
    OutcomeInterval iv;
    iv.rate = est;
    if (rare) {
      const auto cp =
          util::clopper_pearson_interval(k, n_total, ad.confidence_z);
      iv.lo = std::min(cp.lo, est);
      iv.hi = std::max(cp.hi, est);
      iv.exact = true;
    } else if (use_strata_ && covered) {
      const double half = ad.confidence_z * std::sqrt(strat_var);
      iv.lo = std::max(0.0, est - half);
      iv.hi = std::min(1.0, est + half);
    } else {
      const auto wi = util::wilson_interval(k, n_total, ad.confidence_z);
      iv.lo = wi.lo;
      iv.hi = wi.hi;
    }
    envelope_[static_cast<std::size_t>(o)] = iv;
  }
}

double AdaptiveDriver::target_half_width(double est) const {
  const AdaptiveConfig& ad = config_.adaptive;
  if (ad.ci_relative > 0.0)
    return ad.ci_relative * std::max(est, ad.rare_threshold);
  return ad.ci_half_width;
}

AdaptiveStats AdaptiveDriver::stats() const {
  AdaptiveStats stats;
  stats.trials_requested = cap_;
  stats.trials_executed = executed_;
  stats.stop_reason = stop_;
  stats.stratified = use_strata_;
  stats.strata = use_strata_ ? space_.strata().size() : 1;
  stats.success = envelope_[0];
  stats.sdc = envelope_[1];
  stats.failure = envelope_[2];
  if (use_strata_) {
    // Post-stratified r_x: each stratum's contamination distribution
    // weighted by its population share, renormalized over the trials
    // whose contamination is known (mirrors the raw-histogram rule).
    const auto& strata = space_.strata();
    std::vector<double> q(static_cast<std::size_t>(config_.nranks), 0.0);
    double mass = 0.0;
    for (std::size_t i = 0; i < strata.size(); ++i) {
      const Tally& t = tallies_[i];
      if (t.tally.trials == 0) continue;
      const double ns = static_cast<double>(t.tally.trials);
      for (std::size_t x = 1; x < t.hist.size(); ++x) {
        const double share =
            strata[i].weight * static_cast<double>(t.hist[x]) / ns;
        q[x - 1] += share;
        mass += share;
      }
    }
    if (mass > 0.0) {
      for (double& v : q) v /= mass;
      stats.propagation = std::move(q);
    }
  }
  return stats;
}

}  // namespace resilience::harness
