#include "harness/golden_cache.hpp"

#include "harness/executor.hpp"
#include "harness/golden_store.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::harness {

std::shared_ptr<const GoldenRun> GoldenCache::get_or_profile(
    const apps::App& app, int nranks,
    std::chrono::milliseconds deadlock_timeout, Executor* executor) {
  const Key key{app.label(), nranks};
  std::promise<std::shared_ptr<const GoldenRun>> promise;
  Future future;
  bool leader = false;
  {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      future = it->second;
      ++hits_;
      telemetry::count(telemetry::Counter::HarnessGoldenHits);
      if (future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        // Still in flight: this request blocks on the leader.
        ++waits_;
        telemetry::count(telemetry::Counter::HarnessGoldenWaits);
        telemetry::trace_instant("harness", "golden_cache_wait");
      }
    } else {
      leader = true;
      future = promise.get_future().share();
      entries_.emplace(key, future);
      ++misses_;
      telemetry::count(telemetry::Counter::HarnessGoldenMisses);
    }
  }
  if (leader) {
    try {
      auto run_profile = [&]() -> GoldenRun {
        GoldenRun result;
        auto profile = [&] {
          result = profile_app(app, nranks, deadlock_timeout);
        };
        if (executor != nullptr) {
          std::vector<Executor::Task> task;
          task.push_back({nranks, profile});
          executor->run(std::move(task));
        } else {
          profile();
        }
        // Counted here (the requesting thread) rather than inside the
        // profile lambda: when the run is admitted through the executor it
        // executes on a worker thread outside any metric scope. Skipped
        // entirely when the on-disk store served the run — nothing was
        // profiled.
        telemetry::count(telemetry::Counter::HarnessGoldenProfiles);
        return result;
      };
      std::shared_ptr<const GoldenRun> golden;
      if (store_ != nullptr) {
        golden = store_->load_or_fill(app, nranks, run_profile);
      } else {
        golden = std::make_shared<const GoldenRun>(run_profile());
      }
      promise.set_value(std::move(golden));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard lock(mu_);
      entries_.erase(key);
    }
  }
  return future.get();
}

std::size_t GoldenCache::hits() const {
  std::lock_guard lock(mu_);
  return hits_;
}

std::size_t GoldenCache::misses() const {
  std::lock_guard lock(mu_);
  return misses_;
}

std::size_t GoldenCache::waits() const {
  std::lock_guard lock(mu_);
  return waits_;
}

}  // namespace resilience::harness
