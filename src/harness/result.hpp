// Fault-injection outcome vocabulary (paper Section 2).
//
// Each fault-injection test ends in one of three outcomes; a fault
// injection *result* is the per-outcome fraction over all tests of a
// deployment. The paper's headline metric is the success rate.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace resilience::harness {

enum class Outcome {
  /// Output identical to the fault-free run, or different but accepted by
  /// the application's own verification ("checker").
  Success,
  /// Output differs from the fault-free run and fails verification.
  SDC,
  /// The run crashed, aborted, hung, or exceeded its operation budget.
  Failure,
  /// An injected fail-stop fault (FaultPattern::RankCrash) killed the
  /// target rank; the job wound down through simmpi's abort/teardown.
  /// Distinct from Failure: the rank death is the *fault*, not a symptom.
  Crash,
};

const char* to_string(Outcome o) noexcept;

/// Statistical summary of one fault-injection deployment.
struct FaultInjectionResult {
  std::size_t trials = 0;
  std::size_t success = 0;
  std::size_t sdc = 0;
  std::size_t failure = 0;
  std::size_t crash = 0;

  void add(Outcome o) {
    ++trials;
    switch (o) {
      case Outcome::Success:
        ++success;
        break;
      case Outcome::SDC:
        ++sdc;
        break;
      case Outcome::Failure:
        ++failure;
        break;
      case Outcome::Crash:
        ++crash;
        break;
    }
  }

  void merge(const FaultInjectionResult& other) noexcept {
    trials += other.trials;
    success += other.success;
    sdc += other.sdc;
    failure += other.failure;
    crash += other.crash;
  }

  [[nodiscard]] double rate(Outcome o) const noexcept {
    if (trials == 0) return 0.0;
    const std::size_t count = (o == Outcome::Success) ? success
                              : (o == Outcome::SDC)   ? sdc
                              : (o == Outcome::Crash) ? crash
                                                      : failure;
    return static_cast<double>(count) / static_cast<double>(trials);
  }
  [[nodiscard]] double success_rate() const noexcept {
    return rate(Outcome::Success);
  }
  [[nodiscard]] double sdc_rate() const noexcept { return rate(Outcome::SDC); }
  [[nodiscard]] double failure_rate() const noexcept {
    return rate(Outcome::Failure);
  }
  [[nodiscard]] double crash_rate() const noexcept {
    return rate(Outcome::Crash);
  }
};

}  // namespace resilience::harness
