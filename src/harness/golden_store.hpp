// On-disk golden-run store (DESIGN.md §13).
//
// GoldenCache memoizes golden runs within one process; the store extends
// that across processes and invocations by serializing what a GoldenRun
// holds — per-rank op profiles, the output signature, and the captured
// boundary checkpoints — to one JSON file per (app label, nranks,
// checkpoint settings, schema version) key. Profiling is deterministic in
// the key, so a stored file is exactly what a fresh profile would
// produce; the shard coordinator pre-fills the store and its worker
// processes then load the golden run instead of re-profiling it, and a
// repeated CLI invocation skips the pre-pass entirely.
//
// Fill-once discipline: writers create `<file>.lock` with O_CREAT|O_EXCL,
// write to a temp file, rename it over the data file, and unlink the
// lock. Contenders poll for the data file and take over a stale lock
// after a timeout. Corrupt or truncated files are unlinked and refilled —
// a clean miss, never an error.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "harness/runner.hpp"

namespace resilience::harness {

class GoldenStore {
 public:
  /// Opens (creating if needed) the store directory. Throws
  /// std::runtime_error when the directory cannot be created.
  explicit GoldenStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// The data file of one key (exposed for tests and diagnostics).
  [[nodiscard]] std::string path_for(const apps::App& app, int nranks) const;

  /// Load the golden run of (app, nranks), or null on a miss. Counts
  /// golden_store.hits / golden_store.misses. A malformed file is
  /// unlinked (the next fill recreates it); a file recorded under
  /// different checkpoint settings than the process currently runs with
  /// is left in place but reported as a miss.
  [[nodiscard]] std::shared_ptr<const GoldenRun> load(const apps::App& app,
                                                      int nranks);

  /// Load, or fill by calling `profile` under the fill-once lock and
  /// persisting its result. When another process holds the lock, polls
  /// for its file; a lock older than the poll budget is treated as stale
  /// (a crashed filler) and taken over. Falls back to profiling without
  /// persisting if the store stays contended.
  [[nodiscard]] std::shared_ptr<const GoldenRun> load_or_fill(
      const apps::App& app, int nranks,
      const std::function<GoldenRun()>& profile);

  /// Serialize `golden` for (app, nranks), overwriting any existing file
  /// (temp write + atomic rename). Throws std::runtime_error on I/O
  /// failure.
  void put(const apps::App& app, int nranks, const GoldenRun& golden);

 private:
  [[nodiscard]] std::shared_ptr<const GoldenRun> load_impl(
      const apps::App& app, int nranks, bool count);

  std::string dir_;
};

}  // namespace resilience::harness
