// On-disk golden-run store (DESIGN.md §13, binary format §15).
//
// GoldenCache memoizes golden runs within one process; the store extends
// that across processes and invocations by serializing what a GoldenRun
// holds — per-rank op profiles, the output signature, and the captured
// boundary checkpoints — to one file per (app label, nranks, checkpoint
// settings, format version) key. Profiling is deterministic in the key,
// so a stored file is exactly what a fresh profile would produce; the
// shard coordinator pre-fills the store and its worker processes then
// load the golden run instead of re-profiling it, and a repeated CLI
// invocation skips the pre-pass entirely.
//
// Two formats coexist: golden-v2 (`<stem>-v2.bin`, the default) is a
// little-endian binary layout with per-section CRC32s, loaded through an
// mmap whose state spans feed the zero-copy fast-forward restore;
// golden-v1 (`<stem>-v1.json`) is the JSON/base64 fallback, still written
// under RESILIENCE_STORE_FORMAT=json and still readable always — a v1
// file found by a binary-format store is served once and rewritten as v2.
//
// Fill-once discipline: writers create `<file>.lock` with O_CREAT|O_EXCL,
// write to a temp file, rename it over the data file, and unlink the
// lock. Contenders poll for the data file and take over a stale lock
// after a timeout (golden_store.lock_takeovers). Corrupt or truncated
// files are unlinked and refilled (golden_store.refills) — a clean miss,
// never an error. Data files are only ever replaced by rename, never
// truncated in place, so live mmaps keep seeing the inode they opened.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "harness/runner.hpp"

namespace resilience::harness {

/// On-disk serialization format of a golden-store file.
enum class StoreFormat : std::uint8_t {
  JsonV1,    ///< `-v1.json`: JSON with base64 rank state
  BinaryV2,  ///< `-v2.bin`: binio sections, CRC32, mmap zero-copy loads
};

class GoldenStore {
 public:
  /// Opens (creating if needed) the store directory; writes use the
  /// RESILIENCE_STORE_FORMAT format (binary unless the host lacks binio
  /// support). Throws std::runtime_error when the directory cannot be
  /// created.
  explicit GoldenStore(std::string dir);
  /// Same, with an explicit write format (tests and benches).
  GoldenStore(std::string dir, StoreFormat write_format);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] StoreFormat write_format() const noexcept {
    return write_format_;
  }

  /// The data file of one key in the active write format (exposed for
  /// tests and diagnostics).
  [[nodiscard]] std::string path_for(const apps::App& app, int nranks) const;
  /// The data file of one key in a specific format.
  [[nodiscard]] std::string path_for(const apps::App& app, int nranks,
                                     StoreFormat format) const;

  /// Load the golden run of (app, nranks), or null on a miss. Counts
  /// golden_store.hits / golden_store.misses. Tries the v2 binary file
  /// first, then the v1 JSON file; a v1 hit under a binary write format
  /// is rewritten as v2 (and the v1 file removed). A malformed file is
  /// unlinked (golden_store.refills; the next fill recreates it); a file
  /// recorded under different checkpoint settings than the process
  /// currently runs with is left in place but reported as a miss.
  [[nodiscard]] std::shared_ptr<const GoldenRun> load(const apps::App& app,
                                                      int nranks);

  /// Load, or fill by calling `profile` under the fill-once lock and
  /// persisting its result. When another process holds the lock, polls
  /// for its file; a lock older than the poll budget is treated as stale
  /// (a crashed filler) and taken over. Falls back to profiling without
  /// persisting if the store stays contended.
  [[nodiscard]] std::shared_ptr<const GoldenRun> load_or_fill(
      const apps::App& app, int nranks,
      const std::function<GoldenRun()>& profile);

  /// Serialize `golden` for (app, nranks) in the active write format,
  /// overwriting any existing file (temp write + atomic rename) and
  /// removing the other format's file so the key stays canonical. Throws
  /// std::runtime_error on I/O failure.
  void put(const apps::App& app, int nranks, const GoldenRun& golden);

 private:
  [[nodiscard]] std::shared_ptr<const GoldenRun> load_impl(
      const apps::App& app, int nranks, bool count);

  std::string dir_;
  StoreFormat write_format_;
};

}  // namespace resilience::harness
