#include "harness/runner.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

namespace resilience::harness {

RunOutput run_app_once(const apps::App& app, int nranks,
                       const std::vector<fsefi::InjectionPlan>& plans,
                       const RunOptions& options) {
  if (!app.supports(nranks)) {
    throw simmpi::UsageError(app.label() + " does not support " +
                             std::to_string(nranks) + " ranks");
  }
  if (!plans.empty() && plans.size() != static_cast<std::size_t>(nranks)) {
    throw simmpi::UsageError("plans must be empty or one per rank");
  }

  // Contexts live here (stable addresses) for the duration of the job.
  std::vector<std::unique_ptr<fsefi::FaultContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    contexts.push_back(std::make_unique<fsefi::FaultContext>());
  }

  RunOutput out;

  simmpi::RunOptions run_opts;
  run_opts.deadlock_timeout = options.deadlock_timeout;
  run_opts.on_rank_start = [&](int rank) {
    auto& ctx = *contexts[static_cast<std::size_t>(rank)];
    if (!plans.empty()) {
      ctx.arm(plans[static_cast<std::size_t>(rank)]);
    } else {
      ctx.reset();
    }
    ctx.set_op_budget(options.op_budget);
    fsefi::install_context(&ctx);
  };
  run_opts.on_rank_exit = [&](int) { fsefi::install_context(nullptr); };

  std::optional<apps::AppResult> rank0_result;
  out.runtime = simmpi::Runtime::run(
      nranks,
      [&](simmpi::Comm& comm) {
        apps::AppResult r = app.run(comm);
        if (comm.rank() == 0) rank0_result = std::move(r);
      },
      run_opts);

  if (out.runtime.ok) out.result = std::move(rank0_result);
  out.hang = !out.runtime.ok &&
             out.runtime.error.find("operation budget exceeded") !=
                 std::string::npos;

  out.profiles.reserve(contexts.size());
  out.contaminated.reserve(contexts.size());
  out.filtered_ops.reserve(contexts.size());
  out.injection_events.reserve(contexts.size());
  for (const auto& ctx : contexts) {
    out.profiles.push_back(ctx->profile());
    out.contaminated.push_back(ctx->contaminated());
    out.filtered_ops.push_back(ctx->filtered_ops());
    out.injection_events.push_back(ctx->injection_events());
  }
  return out;
}

double GoldenRun::unique_fraction() const noexcept {
  std::uint64_t unique = 0, total = 0;
  for (const auto& prof : profiles) {
    unique += prof.in_region(fsefi::Region::ParallelUnique);
    total += prof.total();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(unique) / static_cast<double>(total);
}

std::uint64_t GoldenRun::matching_total(fsefi::KindMask kinds,
                                        fsefi::RegionMask regions) const {
  std::uint64_t total = 0;
  for (const auto& prof : profiles) total += prof.matching(kinds, regions);
  return total;
}

GoldenRun profile_app(const apps::App& app, int nranks,
                      std::chrono::milliseconds deadlock_timeout) {
  RunOptions opts;
  opts.deadlock_timeout = deadlock_timeout;
  RunOutput out = run_app_once(app, nranks, /*plans=*/{}, opts);
  if (!out.runtime.ok || !out.result.has_value()) {
    throw std::runtime_error("golden run of " + app.label() + " on " +
                             std::to_string(nranks) +
                             " ranks failed: " + out.runtime.error);
  }
  GoldenRun golden;
  golden.profiles = std::move(out.profiles);
  golden.signature = out.result->signature;
  for (const auto& prof : golden.profiles) {
    golden.max_rank_ops = std::max(golden.max_rank_ops, prof.total());
  }
  return golden;
}

}  // namespace resilience::harness
