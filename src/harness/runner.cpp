#include "harness/runner.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

#include "apps/trial_control.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::harness {

namespace {

/// a - b, componentwise over the (region, kind) cells.
fsefi::OpCountProfile profile_delta(const fsefi::OpCountProfile& a,
                                    const fsefi::OpCountProfile& b) noexcept {
  fsefi::OpCountProfile d;
  for (int r = 0; r < fsefi::kNumRegions; ++r) {
    for (int k = 0; k < fsefi::kNumOpKinds; ++k) {
      d.counts[r][k] = a.counts[r][k] - b.counts[r][k];
    }
  }
  return d;
}

void add_profile(fsefi::OpCountProfile& dst,
                 const fsefi::OpCountProfile& src) noexcept {
  for (int r = 0; r < fsefi::kNumRegions; ++r) {
    for (int k = 0; k < fsefi::kNumOpKinds; ++k) {
      dst.counts[r][k] += src.counts[r][k];
    }
  }
}

}  // namespace

RunOutput run_app_once(const apps::App& app, int nranks,
                       const std::vector<fsefi::InjectionPlan>& plans,
                       const RunOptions& options) {
  if (!app.supports(nranks)) {
    throw simmpi::UsageError(app.label() + " does not support " +
                             std::to_string(nranks) + " ranks");
  }
  if (!plans.empty() && plans.size() != static_cast<std::size_t>(nranks)) {
    throw simmpi::UsageError("plans must be empty or one per rank");
  }

  // Contexts live here (stable addresses) for the duration of the job.
  std::vector<std::unique_ptr<fsefi::FaultContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    contexts.push_back(std::make_unique<fsefi::FaultContext>());
  }

  // Trial controls (DESIGN.md §9): a golden capture records boundaries; an
  // armed run with checkpoints gets fast-forward + early exit. The restore
  // boundary is chosen once, before launch, so every rank resumes at the
  // same iteration.
  const bool armed = [&] {
    for (const auto& plan : plans) {
      if (plan.armed()) return true;
    }
    return false;
  }();
  const bool state_armed = [&] {
    for (const auto& plan : plans) {
      if (!plan.state_faults.empty()) return true;
    }
    return false;
  }();
  const CheckpointData* ckpt =
      (options.checkpoints != nullptr && armed) ? options.checkpoints
                                                : nullptr;
  const BoundaryRecord* resume =
      ckpt != nullptr ? select_resume(*ckpt, plans) : nullptr;
  std::vector<std::unique_ptr<apps::TrialControl>> controls;
  std::vector<FastForwardControl*> ff_controls;
  if (options.capture != nullptr) {
    options.capture->ranks.assign(static_cast<std::size_t>(nranks), {});
    options.capture->state_reals.assign(static_cast<std::size_t>(nranks), 0);
    for (int r = 0; r < nranks; ++r) {
      controls.push_back(std::make_unique<CaptureControl>(
          options.capture->ranks[static_cast<std::size_t>(r)],
          options.capture->state_reals[static_cast<std::size_t>(r)],
          options.capture->budget));
    }
  } else if (ckpt != nullptr || state_armed) {
    // With checkpoints the control fast-forwards and early-exits; without
    // them (kill switch off) a state-armed plan still needs the boundary
    // hook to perform its flips — data stays null, so the control only
    // injects and joins the consensus.
    for (int r = 0; r < nranks; ++r) {
      auto ctl = std::make_unique<FastForwardControl>(
          ckpt, resume, r, plans[static_cast<std::size_t>(r)]);
      ff_controls.push_back(ctl.get());
      controls.push_back(std::move(ctl));
    }
  }

  RunOutput out;

  simmpi::RunOptions run_opts;
  run_opts.deadlock_timeout = options.deadlock_timeout;
  run_opts.on_rank_start = [&](int rank) {
    auto& ctx = *contexts[static_cast<std::size_t>(rank)];
    if (!plans.empty()) {
      ctx.arm(plans[static_cast<std::size_t>(rank)]);
    } else {
      ctx.reset();
    }
    ctx.set_op_budget(options.op_budget);
    fsefi::install_context(&ctx);
    if (!controls.empty()) {
      apps::install_trial_control(
          controls[static_cast<std::size_t>(rank)].get());
    }
  };
  run_opts.on_rank_exit = [&](int) {
    apps::install_trial_control(nullptr);
    fsefi::install_context(nullptr);
  };

  std::optional<apps::AppResult> rank0_result;
  out.runtime = simmpi::Runtime::run(
      nranks,
      [&](simmpi::Comm& comm) {
        apps::AppResult r = app.run(comm);
        if (comm.rank() == 0) rank0_result = std::move(r);
      },
      run_opts);

  if (out.runtime.ok) out.result = std::move(rank0_result);
  out.hang = !out.runtime.ok &&
             out.runtime.error.find("operation budget exceeded") !=
                 std::string::npos;
  out.crashed = !out.runtime.ok &&
                out.runtime.error.find("injected rank crash") !=
                    std::string::npos;

  out.profiles.reserve(contexts.size());
  out.contaminated.reserve(contexts.size());
  out.filtered_ops.reserve(contexts.size());
  out.injection_events.reserve(contexts.size());
  out.recv_reals.reserve(contexts.size());
  for (const auto& ctx : contexts) {
    out.profiles.push_back(ctx->profile());
    out.contaminated.push_back(ctx->contaminated());
    out.filtered_ops.push_back(ctx->filtered_ops());
    out.injection_events.push_back(ctx->injection_events());
    out.recv_reals.push_back(ctx->recv_reals());
  }

  if (!ff_controls.empty()) {
    out.checkpoint_restored = resume != nullptr;
    out.resume_iteration = resume != nullptr ? resume->iter : 0;
    out.early_exit = out.runtime.ok && ff_controls.front()->early_exit();
  }
  if (out.early_exit) {
    // The run stopped at a boundary where every rank's live state
    // bit-equals the golden run's: the tail would replay golden exactly.
    // Synthesize its observables — the per-rank op counts the skipped
    // tail would have added, and the golden final output.
    const BoundaryRecord* at = ckpt->find(ff_controls.front()->exit_iter());
    if (at == nullptr) {
      throw std::logic_error("early exit at an unrecorded boundary");
    }
    for (int r = 0; r < nranks; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const fsefi::OpCountProfile tail =
          profile_delta(ckpt->final_profiles[ri], at->profiles[ri]);
      add_profile(out.profiles[ri], tail);
      if (!plans[ri].points.empty()) {
        out.filtered_ops[ri] +=
            tail.matching(plans[ri].kinds, plans[ri].regions);
      }
      // recv_reals is left at the exit-boundary value: only golden runs
      // (which never early-exit) feed the payload sample space.
    }
    out.result = apps::AppResult{ckpt->signature, ckpt->iterations};
  }
  return out;
}

double GoldenRun::unique_fraction() const noexcept {
  std::uint64_t unique = 0, total = 0;
  for (const auto& prof : profiles) {
    unique += prof.in_region(fsefi::Region::ParallelUnique);
    total += prof.total();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(unique) / static_cast<double>(total);
}

std::uint64_t GoldenRun::matching_total(fsefi::KindMask kinds,
                                        fsefi::RegionMask regions) const {
  std::uint64_t total = 0;
  for (const auto& prof : profiles) total += prof.matching(kinds, regions);
  return total;
}

GoldenRun profile_app(const apps::App& app, int nranks,
                      std::chrono::milliseconds deadlock_timeout,
                      bool capture_checkpoints) {
  telemetry::TraceSpan span("harness", "golden_profile", "nranks",
                            static_cast<std::uint64_t>(nranks));
  RunOptions opts;
  opts.deadlock_timeout = deadlock_timeout;
  CheckpointCapture capture;
  if (capture_checkpoints) {
    capture.budget = checkpoint_budget();
    opts.capture = &capture;
  }
  RunOutput out = run_app_once(app, nranks, /*plans=*/{}, opts);
  if (!out.runtime.ok || !out.result.has_value()) {
    throw std::runtime_error("golden run of " + app.label() + " on " +
                             std::to_string(nranks) +
                             " ranks failed: " + out.runtime.error);
  }
  GoldenRun golden;
  golden.profiles = std::move(out.profiles);
  golden.signature = out.result->signature;
  golden.recv_reals = std::move(out.recv_reals);
  for (const auto& prof : golden.profiles) {
    golden.max_rank_ops = std::max(golden.max_rank_ops, prof.total());
  }
  if (capture_checkpoints) {
    if (auto data = assemble_checkpoints(std::move(capture))) {
      data->signature = golden.signature;
      data->iterations = out.result->iterations;
      data->final_profiles = golden.profiles;
      golden.checkpoints = std::move(data);
    }
  }
  return golden;
}

}  // namespace resilience::harness
