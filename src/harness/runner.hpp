// Single-run execution of an application under fault-injection contexts.
//
// The runner launches one simmpi job for the app, installs a FaultContext
// on every rank thread (optionally armed with per-rank injection plans),
// and collects what the fault injector observed: per-rank dynamic
// operation profiles, per-rank contamination flags, and the rank-0 output.
//
// With golden checkpoints supplied (DESIGN.md §9), an armed run also gets
// a FastForwardControl per rank: the app's boundary hooks let the trial
// resume from the latest stored checkpoint before its injection and
// terminate early once every rank reconverges to the golden run, with the
// observable outputs synthesized to stay bit-identical to a full run.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "apps/app.hpp"
#include "fsefi/fault_context.hpp"
#include "harness/checkpoint.hpp"
#include "simmpi/runtime.hpp"

namespace resilience::harness {

struct RunOptions {
  /// Per-rank dynamic-operation budget; 0 disables the hang guard.
  std::uint64_t op_budget = 0;
  /// Deadlock timeout of the underlying simmpi job.
  std::chrono::milliseconds deadlock_timeout{10'000};
  /// Golden capture: when set, every rank records per-boundary op counts,
  /// state digests, and budgeted full-state snapshots into this sink.
  CheckpointCapture* capture = nullptr;
  /// Trial fast-forward: golden checkpoints of this (app, nranks)
  /// deployment. Armed runs resume at the latest stored boundary before
  /// their first injection and exit early after reconvergence.
  const CheckpointData* checkpoints = nullptr;
};

struct RunOutput {
  simmpi::RunResult runtime;             ///< how the job ended
  std::optional<apps::AppResult> result; ///< rank-0 output if the job finished
  std::vector<fsefi::OpCountProfile> profiles;  ///< per rank
  std::vector<bool> contaminated;               ///< per rank
  /// Per rank: dynamic ops that matched the armed plan's filters (0 for
  /// counting-only runs), and the trace of performed injections.
  std::vector<std::uint64_t> filtered_ops;
  std::vector<std::vector<fsefi::InjectionEvent>> injection_events;
  /// Per rank: fsefi::Real elements delivered by receives — the
  /// MessagePayload scenario sample space, recorded on golden runs.
  std::vector<std::uint64_t> recv_reals;
  bool hang = false;  ///< failure was the op-budget (hang) guard
  /// Failure was an injected fail-stop fault (RankCrash): the planned
  /// rank death aborted the job through simmpi teardown.
  bool crashed = false;
  /// Checkpoint fast path: whether the run resumed from a stored golden
  /// boundary (and at which iteration), and whether it exited early with
  /// synthesized outputs.
  bool checkpoint_restored = false;
  int resume_iteration = 0;
  bool early_exit = false;

  /// Number of ranks whose memory or computation touched corrupted data.
  [[nodiscard]] int contaminated_ranks() const noexcept {
    int n = 0;
    for (bool c : contaminated) n += c ? 1 : 0;
    return n;
  }
};

/// Run `app` on `nranks` ranks. `plans[r]`, when present, is armed on rank
/// r before the run; an empty vector means a fault-free (counting-only)
/// run. Throws simmpi::UsageError for unsupported rank counts.
RunOutput run_app_once(const apps::App& app, int nranks,
                       const std::vector<fsefi::InjectionPlan>& plans,
                       const RunOptions& options = {});

/// Fault-free profiling pre-pass: dynamic op counts per rank and the
/// golden output signature of this (app, nranks) deployment.
struct GoldenRun {
  std::vector<fsefi::OpCountProfile> profiles;  ///< per rank
  std::vector<double> signature;                ///< rank-0 output
  std::uint64_t max_rank_ops = 0;
  /// Per-rank delivered-Real counts (the MessagePayload sample space).
  /// Empty in campaign files saved before the scenario catalog; such
  /// golden runs cannot drive payload deployments until re-profiled.
  std::vector<std::uint64_t> recv_reals;
  /// Boundary checkpoints captured during the pre-pass (null when capture
  /// was disabled or the app has no boundary hooks). Not part of the
  /// campaign file schema; the on-disk GoldenStore serializes them with
  /// full fidelity (golden_to_json) so a loaded golden run drives the
  /// checkpoint fast path exactly like a fresh one.
  std::shared_ptr<const CheckpointData> checkpoints;

  /// Fraction of all dynamic operations spent in the parallel-unique
  /// region (the op-count analogue of the paper's Table 1 time fraction).
  [[nodiscard]] double unique_fraction() const noexcept;

  /// Total operations matching the filters, summed over ranks.
  [[nodiscard]] std::uint64_t matching_total(fsefi::KindMask kinds,
                                             fsefi::RegionMask regions) const;
};

/// Run the fault-free pre-pass; throws std::runtime_error if the golden
/// run itself fails (an app/configuration bug, never an injected fault).
/// Capture is on by default regardless of the RESILIENCE_CHECKPOINT kill
/// switch: the switch gates trial *use* (fast-forward + early exit), but
/// the boundary metadata a capture records is also the ResidentState
/// scenario's sample space, which must not change shape with the knob.
GoldenRun profile_app(const apps::App& app, int nranks,
                      std::chrono::milliseconds deadlock_timeout =
                          std::chrono::milliseconds{10'000},
                      bool capture_checkpoints = true);

}  // namespace resilience::harness
