#include "harness/serialize.hpp"

#include <fstream>
#include <sstream>

#include "harness/checkpoint.hpp"
#include "util/encoding.hpp"

namespace resilience::harness {

namespace {

constexpr int kSchemaVersion = 1;
// v2: delivered-Real counts (recv_reals) + per-rank boundary-state element
// counts (checkpoints.state_reals) — the payload and resident-state sample
// spaces. Golden stores treat a version mismatch as a cache miss and
// re-profile, so no migration path is needed.
constexpr int kGoldenSchemaVersion = 2;

util::Json profile_to_json(const fsefi::OpCountProfile& prof) {
  util::JsonArray counts;
  for (const auto& row : prof.counts) {
    for (std::uint64_t c : row) counts.push_back(util::Json(c));
  }
  return util::Json(std::move(counts));
}

fsefi::OpCountProfile profile_from_json(const util::Json& json) {
  const auto& counts = json.as_array();
  constexpr std::size_t kCells =
      static_cast<std::size_t>(fsefi::kNumRegions) * fsefi::kNumOpKinds;
  if (counts.size() != kCells) {
    throw util::JsonError("op-count profile has the wrong shape");
  }
  fsefi::OpCountProfile prof;
  std::size_t i = 0;
  for (auto& row : prof.counts) {
    for (auto& cell : row) {
      cell = static_cast<std::uint64_t>(counts[i++].as_int());
    }
  }
  return prof;
}

util::Json to_json(const FaultInjectionResult& r) {
  util::JsonObject obj;
  obj["trials"] = util::Json(r.trials);
  obj["success"] = util::Json(r.success);
  obj["sdc"] = util::Json(r.sdc);
  obj["failure"] = util::Json(r.failure);
  // Optional key (schema stays at version 1): only fail-stop scenarios
  // produce Crash outcomes, so pre-scenario campaigns keep their exact
  // bytes.
  if (r.crash != 0) obj["crash"] = util::Json(r.crash);
  return util::Json(std::move(obj));
}

FaultInjectionResult result_from_json(const util::Json& json) {
  FaultInjectionResult r;
  r.trials = static_cast<std::size_t>(json.at("trials").as_int());
  r.success = static_cast<std::size_t>(json.at("success").as_int());
  r.sdc = static_cast<std::size_t>(json.at("sdc").as_int());
  r.failure = static_cast<std::size_t>(json.at("failure").as_int());
  const auto& obj = json.as_object();
  if (const auto it = obj.find("crash"); it != obj.end()) {
    r.crash = static_cast<std::size_t>(it->second.as_int());
  }
  if (r.success + r.sdc + r.failure + r.crash != r.trials) {
    throw util::JsonError("fault injection result counts are inconsistent");
  }
  return r;
}

util::Json to_json(const DeploymentConfig& cfg) {
  util::JsonObject obj;
  obj["nranks"] = util::Json(cfg.nranks);
  obj["errors_per_test"] = util::Json(cfg.errors_per_test);
  // The legacy triple is always emitted (derived from the scenario), so
  // pre-scenario configs keep their exact bytes and old tooling keeps
  // reading the filters it understands.
  obj["kinds"] = util::Json(static_cast<int>(cfg.scenario.kinds));
  obj["pattern"] = util::Json(static_cast<int>(cfg.scenario.pattern));
  obj["regions"] = util::Json(static_cast<int>(cfg.scenario.regions));
  obj["trials"] = util::Json(cfg.trials);
  obj["seed"] = util::Json(cfg.seed);
  obj["selection"] = util::Json(static_cast<int>(cfg.selection));
  // Optional block: only scenarios the legacy triple cannot express carry
  // the full descriptor.
  if (!cfg.scenario.legacy()) {
    util::JsonObject sc;
    sc["domain"] = util::Json(static_cast<int>(cfg.scenario.domain));
    sc["pattern"] = util::Json(static_cast<int>(cfg.scenario.pattern));
    sc["arrival"] = util::Json(static_cast<int>(cfg.scenario.arrival));
    sc["kinds"] = util::Json(static_cast<int>(cfg.scenario.kinds));
    sc["regions"] = util::Json(static_cast<int>(cfg.scenario.regions));
    sc["mtbf_factor"] = util::Json(cfg.scenario.mtbf_factor);
    obj["scenario"] = util::Json(std::move(sc));
  }
  return util::Json(std::move(obj));
}

util::Json to_json(const OutcomeInterval& iv) {
  util::JsonObject obj;
  obj["rate"] = util::Json(iv.rate);
  obj["lo"] = util::Json(iv.lo);
  obj["hi"] = util::Json(iv.hi);
  obj["exact"] = util::Json(iv.exact);
  return util::Json(std::move(obj));
}

OutcomeInterval interval_from_json(const util::Json& json) {
  OutcomeInterval iv;
  iv.rate = json.at("rate").as_double();
  iv.lo = json.at("lo").as_double();
  iv.hi = json.at("hi").as_double();
  iv.exact = json.at("exact").as_bool();
  return iv;
}

util::Json to_json(const AdaptiveStats& stats) {
  util::JsonObject obj;
  obj["trials_requested"] = util::Json(stats.trials_requested);
  obj["trials_executed"] = util::Json(stats.trials_executed);
  obj["stop_reason"] = util::Json(static_cast<int>(stats.stop_reason));
  obj["stratified"] = util::Json(stats.stratified);
  obj["strata"] = util::Json(stats.strata);
  obj["success"] = to_json(stats.success);
  obj["sdc"] = to_json(stats.sdc);
  obj["failure"] = to_json(stats.failure);
  util::JsonArray propagation;
  for (double v : stats.propagation) propagation.push_back(util::Json(v));
  obj["propagation"] = util::Json(std::move(propagation));
  return util::Json(std::move(obj));
}

AdaptiveStats adaptive_from_json(const util::Json& json) {
  AdaptiveStats stats;
  stats.trials_requested =
      static_cast<std::size_t>(json.at("trials_requested").as_int());
  stats.trials_executed =
      static_cast<std::size_t>(json.at("trials_executed").as_int());
  stats.stop_reason = static_cast<StopReason>(json.at("stop_reason").as_int());
  stats.stratified = json.at("stratified").as_bool();
  stats.strata = static_cast<std::size_t>(json.at("strata").as_int());
  stats.success = interval_from_json(json.at("success"));
  stats.sdc = interval_from_json(json.at("sdc"));
  stats.failure = interval_from_json(json.at("failure"));
  for (const auto& item : json.at("propagation").as_array()) {
    stats.propagation.push_back(item.as_double());
  }
  return stats;
}

DeploymentConfig config_from_json(const util::Json& json) {
  DeploymentConfig cfg;
  cfg.nranks = static_cast<int>(json.at("nranks").as_int());
  cfg.errors_per_test = static_cast<int>(json.at("errors_per_test").as_int());
  cfg.trials = static_cast<std::size_t>(json.at("trials").as_int());
  cfg.seed = static_cast<std::uint64_t>(json.at("seed").as_int());
  cfg.selection =
      static_cast<TargetSelection>(json.at("selection").as_int());
  const auto& obj = json.as_object();
  if (const auto it = obj.find("scenario"); it != obj.end()) {
    const auto& sc = it->second;
    cfg.scenario.domain =
        static_cast<fsefi::FaultDomain>(sc.at("domain").as_int());
    cfg.scenario.pattern =
        static_cast<fsefi::FaultPattern>(sc.at("pattern").as_int());
    cfg.scenario.arrival =
        static_cast<fsefi::ArrivalModel>(sc.at("arrival").as_int());
    cfg.scenario.kinds = static_cast<fsefi::KindMask>(sc.at("kinds").as_int());
    cfg.scenario.regions =
        static_cast<fsefi::RegionMask>(sc.at("regions").as_int());
    cfg.scenario.mtbf_factor = sc.at("mtbf_factor").as_double();
  } else {
    // Pre-scenario file: the legacy triple is the whole description — an
    // implicit register-operand, fixed-arrival scenario.
    cfg.scenario.kinds = static_cast<fsefi::KindMask>(json.at("kinds").as_int());
    cfg.scenario.pattern =
        static_cast<fsefi::FaultPattern>(json.at("pattern").as_int());
    cfg.scenario.regions =
        static_cast<fsefi::RegionMask>(json.at("regions").as_int());
  }
  return cfg;
}

}  // namespace

util::Json to_json(const CampaignResult& result) {
  util::JsonObject obj;
  obj["version"] = util::Json(kSchemaVersion);
  obj["config"] = to_json(result.config);
  obj["overall"] = to_json(result.overall);

  util::JsonArray hist;
  for (std::size_t count : result.contamination_hist) {
    hist.push_back(util::Json(count));
  }
  obj["contamination_hist"] = util::Json(std::move(hist));

  util::JsonArray conditional;
  for (const auto& cond : result.by_contamination) {
    conditional.push_back(to_json(cond));
  }
  obj["by_contamination"] = util::Json(std::move(conditional));

  util::JsonObject golden;
  {
    util::JsonArray signature;
    for (double v : result.golden.signature) signature.push_back(util::Json(v));
    golden["signature"] = util::Json(std::move(signature));
    golden["max_rank_ops"] = util::Json(result.golden.max_rank_ops);
    util::JsonArray profiles;
    for (const auto& prof : result.golden.profiles) {
      profiles.push_back(profile_to_json(prof));
    }
    golden["profiles"] = util::Json(std::move(profiles));
    // Optional key: only non-legacy scenarios need the delivered-Real
    // counts (the payload sample space) to rerun from a saved file, and
    // omitting it keeps pre-scenario campaign files byte-identical.
    if (!result.config.scenario.legacy()) {
      util::JsonArray recv;
      for (std::uint64_t c : result.golden.recv_reals) {
        recv.push_back(util::Json(c));
      }
      golden["recv_reals"] = util::Json(std::move(recv));
    }
  }
  obj["golden"] = util::Json(std::move(golden));
  obj["wall_seconds"] = util::Json(result.wall_seconds);
  // Optional block (schema stays at version 1): present only for
  // adaptive runs, so fixed-campaign files are byte-identical to those of
  // builds without the adaptive engine.
  if (result.adaptive) obj["adaptive"] = to_json(*result.adaptive);
  return util::Json(std::move(obj));
}

CampaignResult campaign_from_json(const util::Json& json) {
  if (json.at("version").as_int() != kSchemaVersion) {
    throw util::JsonError("unsupported campaign schema version");
  }
  CampaignResult result;
  result.config = config_from_json(json.at("config"));
  result.overall = result_from_json(json.at("overall"));

  for (const auto& item : json.at("contamination_hist").as_array()) {
    result.contamination_hist.push_back(
        static_cast<std::size_t>(item.as_int()));
  }
  for (const auto& item : json.at("by_contamination").as_array()) {
    result.by_contamination.push_back(result_from_json(item));
  }
  if (result.contamination_hist.size() !=
          static_cast<std::size_t>(result.config.nranks) + 1 ||
      result.by_contamination.size() != result.contamination_hist.size()) {
    throw util::JsonError("contamination data has the wrong shape");
  }

  const auto& golden = json.at("golden");
  for (const auto& item : golden.at("signature").as_array()) {
    result.golden.signature.push_back(item.as_double());
  }
  result.golden.max_rank_ops =
      static_cast<std::uint64_t>(golden.at("max_rank_ops").as_int());
  for (const auto& item : golden.at("profiles").as_array()) {
    result.golden.profiles.push_back(profile_from_json(item));
  }
  const auto& golden_obj = golden.as_object();
  if (const auto it = golden_obj.find("recv_reals"); it != golden_obj.end()) {
    for (const auto& item : it->second.as_array()) {
      result.golden.recv_reals.push_back(
          static_cast<std::uint64_t>(item.as_int()));
    }
  }
  result.wall_seconds = json.at("wall_seconds").as_double();
  const auto& obj = json.as_object();
  if (const auto it = obj.find("adaptive"); it != obj.end()) {
    result.adaptive = adaptive_from_json(it->second);
  }
  return result;
}

util::Json golden_to_json(const GoldenRun& golden) {
  util::JsonObject obj;
  obj["version"] = util::Json(kGoldenSchemaVersion);
  util::JsonArray signature;
  for (double v : golden.signature) signature.push_back(util::Json(v));
  obj["signature"] = util::Json(std::move(signature));
  obj["max_rank_ops"] = util::Json(golden.max_rank_ops);
  util::JsonArray profiles;
  for (const auto& prof : golden.profiles) {
    profiles.push_back(profile_to_json(prof));
  }
  obj["profiles"] = util::Json(std::move(profiles));
  util::JsonArray recv;
  for (std::uint64_t c : golden.recv_reals) recv.push_back(util::Json(c));
  obj["recv_reals"] = util::Json(std::move(recv));
  if (golden.checkpoints != nullptr) {
    const CheckpointData& cp = *golden.checkpoints;
    util::JsonObject cpj;
    cpj["nranks"] = util::Json(cp.nranks);
    cpj["iterations"] = util::Json(cp.iterations);
    util::JsonArray state_reals;
    for (std::uint64_t c : cp.state_reals) {
      state_reals.push_back(util::Json(c));
    }
    cpj["state_reals"] = util::Json(std::move(state_reals));
    util::JsonArray cpsig;
    for (double v : cp.signature) cpsig.push_back(util::Json(v));
    cpj["signature"] = util::Json(std::move(cpsig));
    util::JsonArray finals;
    for (const auto& prof : cp.final_profiles) {
      finals.push_back(profile_to_json(prof));
    }
    cpj["final_profiles"] = util::Json(std::move(finals));
    util::JsonArray boundaries;
    for (const BoundaryRecord& rec : cp.boundaries) {
      util::JsonObject recj;
      recj["iter"] = util::Json(rec.iter);
      util::JsonArray recp;
      for (const auto& prof : rec.profiles) recp.push_back(profile_to_json(prof));
      recj["profiles"] = util::Json(std::move(recp));
      util::JsonArray digests;
      for (std::uint64_t d : rec.digests) digests.push_back(util::Json(d));
      recj["digests"] = util::Json(std::move(digests));
      // Per-rank base64 state; empty array at boundaries outside the
      // storage budget (stored() is false on both sides of a round trip).
      util::JsonArray state;
      for (const auto& bytes : rec.state) {
        state.push_back(util::Json(util::base64_encode(bytes.bytes())));
      }
      recj["state"] = util::Json(std::move(state));
      boundaries.push_back(util::Json(std::move(recj)));
    }
    cpj["boundaries"] = util::Json(std::move(boundaries));
    obj["checkpoints"] = util::Json(std::move(cpj));
  }
  return util::Json(std::move(obj));
}

GoldenRun golden_from_json(const util::Json& json) {
  if (json.at("version").as_int() != kGoldenSchemaVersion) {
    throw util::JsonError("unsupported golden schema version");
  }
  GoldenRun golden;
  for (const auto& item : json.at("signature").as_array()) {
    golden.signature.push_back(item.as_double());
  }
  golden.max_rank_ops =
      static_cast<std::uint64_t>(json.at("max_rank_ops").as_int());
  for (const auto& item : json.at("profiles").as_array()) {
    golden.profiles.push_back(profile_from_json(item));
  }
  for (const auto& item : json.at("recv_reals").as_array()) {
    golden.recv_reals.push_back(static_cast<std::uint64_t>(item.as_int()));
  }
  const auto& obj = json.as_object();
  if (const auto it = obj.find("checkpoints"); it != obj.end()) {
    const auto& cpj = it->second;
    auto cp = std::make_shared<CheckpointData>();
    cp->nranks = static_cast<int>(cpj.at("nranks").as_int());
    cp->iterations = static_cast<int>(cpj.at("iterations").as_int());
    for (const auto& item : cpj.at("state_reals").as_array()) {
      cp->state_reals.push_back(static_cast<std::uint64_t>(item.as_int()));
    }
    for (const auto& item : cpj.at("signature").as_array()) {
      cp->signature.push_back(item.as_double());
    }
    for (const auto& item : cpj.at("final_profiles").as_array()) {
      cp->final_profiles.push_back(profile_from_json(item));
    }
    const auto nranks = static_cast<std::size_t>(cp->nranks);
    for (const auto& item : cpj.at("boundaries").as_array()) {
      BoundaryRecord rec;
      rec.iter = static_cast<int>(item.at("iter").as_int());
      for (const auto& prof : item.at("profiles").as_array()) {
        rec.profiles.push_back(profile_from_json(prof));
      }
      for (const auto& digest : item.at("digests").as_array()) {
        rec.digests.push_back(static_cast<std::uint64_t>(digest.as_int()));
      }
      for (const auto& state : item.at("state").as_array()) {
        rec.state.push_back(util::base64_decode(state.as_string()));
      }
      if (rec.profiles.size() != nranks || rec.digests.size() != nranks ||
          (!rec.state.empty() && rec.state.size() != nranks)) {
        throw util::JsonError("checkpoint boundary has the wrong shape");
      }
      cp->boundaries.push_back(std::move(rec));
    }
    golden.checkpoints = std::move(cp);
  }
  return golden;
}

void save_campaign(const std::string& path, const CampaignResult& result) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write campaign to " + path);
  out << to_json(result).dump(2) << '\n';
}

CampaignResult load_campaign(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read campaign from " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return campaign_from_json(util::Json::parse(buffer.str()));
}

CampaignResult merge_campaigns(const CampaignResult& a,
                               const CampaignResult& b) {
  const auto& ca = a.config;
  const auto& cb = b.config;
  if (ca.nranks != cb.nranks || ca.errors_per_test != cb.errors_per_test ||
      ca.scenario != cb.scenario || ca.selection != cb.selection) {
    throw simmpi::UsageError(
        "merge_campaigns: deployments have different shapes");
  }
  if (a.golden.signature != b.golden.signature) {
    throw simmpi::UsageError(
        "merge_campaigns: golden signatures differ (different app or input)");
  }
  CampaignResult merged = a;
  merged.config.trials = ca.trials + cb.trials;
  merged.overall.merge(b.overall);
  for (std::size_t i = 0; i < merged.contamination_hist.size(); ++i) {
    merged.contamination_hist[i] += b.contamination_hist[i];
    merged.by_contamination[i].merge(b.by_contamination[i]);
  }
  merged.wall_seconds += b.wall_seconds;
  // A merge is no longer one adaptive run: the inputs' stopping decisions
  // and per-stratum allocations do not compose, so the merged campaign
  // reports plain pooled counts (its rates remain exact).
  merged.adaptive.reset();
  return merged;
}

}  // namespace resilience::harness
