#include "harness/golden_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "harness/checkpoint.hpp"
#include "harness/serialize.hpp"
#include "telemetry/telemetry.hpp"
#include "util/binio.hpp"
#include "util/json.hpp"
#include "util/options.hpp"

namespace resilience::harness {

namespace {

constexpr const char* kStoreSchema = "resilience-golden-store/1";
/// How long a contender waits for a lock holder before declaring the lock
/// stale (a crashed filler) and taking over.
constexpr auto kLockBudget = std::chrono::seconds(10);
constexpr auto kLockPoll = std::chrono::milliseconds(100);

// ---- golden-v2 binary layout (DESIGN.md §15) -------------------------------
//
// header (36 bytes):
//   [ 0.. 8) magic "RESGLDN2"
//   [ 8..12) u32 format version (3: adds per-rank delivered-Real counts to
//            the golden section and per-rank boundary-state element counts
//            to the checkpoint section — the payload and resident-state
//            sample spaces; a version-2 file decodes as corrupt and is
//            unlinked + refilled)
//   [12..16) u32 section count
//   [16..20) u32 nranks
//   [20..24) u32 flags (bit 0: file carries checkpoint data)
//   [24..32) u64 checkpoint_budget
//   [32..36) u32 CRC32 of bytes [0, 32)
// section table (24 bytes per section):
//   {u32 id, u32 CRC32 of the payload, u64 absolute offset, u64 size}
// then the section payloads, packed in table order.

constexpr char kV2Magic[8] = {'R', 'E', 'S', 'G', 'L', 'D', 'N', '2'};
constexpr std::uint32_t kV2Version = 3;
constexpr std::size_t kV2HeaderSize = 36;
constexpr std::size_t kV2TableEntrySize = 24;

enum V2Section : std::uint32_t {
  kSecAppLabel = 1,     ///< raw UTF-8 app label bytes
  kSecGolden = 2,       ///< profiles, signature, max_rank_ops
  kSecCheckpoints = 3,  ///< boundary records incl. raw rank state
};

constexpr std::size_t kProfileCells =
    static_cast<std::size_t>(fsefi::kNumRegions) * fsefi::kNumOpKinds;

/// App label + rank count, reduced to a portable file stem: alphanumerics
/// kept, every other run of characters collapsed to one '_'.
std::string sanitize(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out.push_back(c);
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

std::span<const std::uint64_t> profile_cells(const fsefi::OpCountProfile& p) {
  return {&p.counts[0][0], kProfileCells};
}

void write_profiles(util::BinWriter& w,
                    const std::vector<fsefi::OpCountProfile>& profiles) {
  w.u64(profiles.size());
  for (const auto& p : profiles) w.u64_array(profile_cells(p));
}

std::vector<fsefi::OpCountProfile> read_profiles(util::BinReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<fsefi::OpCountProfile> profiles(n);
  for (auto& p : profiles) {
    r.u64_array(std::span<std::uint64_t>(&p.counts[0][0], kProfileCells));
  }
  return profiles;
}

void write_doubles(util::BinWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  w.f64_array(v);
}

std::vector<double> read_doubles(util::BinReader& r) {
  std::vector<double> v(r.u64());
  r.f64_array(v);
  return v;
}

std::vector<std::byte> encode_golden_v2(const std::string& label, int nranks,
                                        const GoldenRun& golden) {
  util::BinWriter w;
  w.bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kV2Magic), sizeof(kV2Magic)));
  w.u32(kV2Version);
  const bool has_cp = golden.checkpoints != nullptr;
  const std::uint32_t nsections = has_cp ? 3 : 2;
  w.u32(nsections);
  w.u32(static_cast<std::uint32_t>(nranks));
  // Captures are unconditional now; the flag survives so files written by
  // older binaries under RESILIENCE_CHECKPOINT=0 (flag 0, no capture
  // data) read as misses and get refilled. An app without boundary hooks
  // still writes flag 1 with no checkpoint section.
  w.u32(1u);
  w.u64(checkpoint_budget());
  w.u32(0);  // header CRC, patched below
  const std::size_t table_off = w.size();
  for (std::uint32_t i = 0; i < nsections; ++i) {
    w.u32(0);
    w.u32(0);
    w.u64(0);
    w.u64(0);
  }

  struct SectionRange {
    std::uint32_t id;
    std::size_t offset;
    std::size_t size;
  };
  std::vector<SectionRange> sections;
  const auto begin_section = [&](std::uint32_t id) {
    sections.push_back({id, w.size(), 0});
  };
  const auto end_section = [&] {
    sections.back().size = w.size() - sections.back().offset;
  };

  begin_section(kSecAppLabel);
  w.bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(label.data()), label.size()));
  end_section();

  begin_section(kSecGolden);
  w.u64(golden.max_rank_ops);
  write_profiles(w, golden.profiles);
  write_doubles(w, golden.signature);
  w.u64(golden.recv_reals.size());
  w.u64_array(golden.recv_reals);
  end_section();

  if (has_cp) {
    const CheckpointData& cp = *golden.checkpoints;
    begin_section(kSecCheckpoints);
    w.i32(cp.nranks);
    w.i32(cp.iterations);
    w.u64(cp.state_reals.size());
    w.u64_array(cp.state_reals);
    write_doubles(w, cp.signature);
    write_profiles(w, cp.final_profiles);
    w.u64(cp.boundaries.size());
    for (const BoundaryRecord& rec : cp.boundaries) {
      w.i32(rec.iter);
      w.u8(rec.stored() ? 1 : 0);
      write_profiles(w, rec.profiles);
      w.u64(rec.digests.size());
      w.u64_array(rec.digests);
      if (rec.stored()) {
        for (const StateBytes& state : rec.state) {
          const auto bytes = state.bytes();
          w.u64(bytes.size());
          w.bytes(bytes);
        }
      }
    }
    end_section();
  }

  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionRange& sec = sections[i];
    const std::size_t entry = table_off + i * kV2TableEntrySize;
    w.patch_u32(entry, sec.id);
    w.patch_u32(entry + 4,
                util::crc32(w.buffer().subspan(sec.offset, sec.size)));
    w.patch_u64(entry + 8, sec.offset);
    w.patch_u64(entry + 16, sec.size);
  }
  w.patch_u32(kV2HeaderSize - 4,
              util::crc32(w.buffer().subspan(0, kV2HeaderSize - 4)));
  return std::move(w).take();
}

/// Parse a golden-v2 mapping. Throws util::BinError on any structural or
/// checksum problem (the caller unlinks + refills); returns nullptr for a
/// structurally valid file captured under other checkpoint settings (a
/// plain miss that leaves the file in place).
std::shared_ptr<const GoldenRun> decode_golden_v2(
    const std::shared_ptr<util::MappedFile>& map, const std::string& label,
    int nranks) {
  const std::span<const std::byte> file = map->bytes();
  util::BinReader header(file);
  const auto magic = header.bytes(sizeof(kV2Magic));
  if (std::memcmp(magic.data(), kV2Magic, sizeof(kV2Magic)) != 0) {
    throw util::BinError("golden store: bad v2 magic");
  }
  if (header.u32() != kV2Version) {
    throw util::BinError("golden store: unsupported v2 format version");
  }
  const std::uint32_t nsections = header.u32();
  if (header.u32() != static_cast<std::uint32_t>(nranks)) {
    throw util::BinError("golden store: nranks mismatch");
  }
  const bool file_ckpt = (header.u32() & 1u) != 0;
  const std::uint64_t file_budget = header.u64();
  if (header.u32() != util::crc32(file.subspan(0, kV2HeaderSize - 4))) {
    throw util::BinError("golden store: header checksum mismatch");
  }

  struct TableEntry {
    std::uint32_t id;
    std::uint32_t crc;
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::vector<TableEntry> table(nsections);
  for (TableEntry& e : table) {
    e.id = header.u32();
    e.crc = header.u32();
    e.offset = header.u64();
    e.size = header.u64();
    if (e.offset > file.size() || e.size > file.size() - e.offset) {
      throw util::BinError("golden store: section out of range");
    }
    if (util::crc32(file.subspan(e.offset, e.size)) != e.crc) {
      throw util::BinError("golden store: section checksum mismatch");
    }
  }
  const auto section = [&](std::uint32_t id) -> std::span<const std::byte> {
    for (const TableEntry& e : table) {
      if (e.id == id) return file.subspan(e.offset, e.size);
    }
    throw util::BinError("golden store: missing section");
  };

  const auto label_bytes = section(kSecAppLabel);
  if (label.size() != label_bytes.size() ||
      std::memcmp(label.data(), label_bytes.data(), label.size()) != 0) {
    throw util::BinError("golden store: app label mismatch");
  }

  // A file captured under RESILIENCE_CHECKPOINT=0 (flag 0: written before
  // captures became unconditional) or under another budget is valid but
  // not what this process would have profiled: the fast-forward path and
  // the resident-state sample space would diverge from a fresh run. Miss
  // without unlinking — a fill renames over it.
  if (!file_ckpt || file_budget != checkpoint_budget()) {
    return nullptr;
  }

  auto golden = std::make_shared<GoldenRun>();
  {
    util::BinReader r(section(kSecGolden));
    golden->max_rank_ops = r.u64();
    golden->profiles = read_profiles(r);
    golden->signature = read_doubles(r);
    golden->recv_reals.resize(r.u64());
    r.u64_array(golden->recv_reals);
  }
  bool has_cp = false;
  for (const TableEntry& e : table) has_cp |= e.id == kSecCheckpoints;
  if (has_cp) {
    util::BinReader r(section(kSecCheckpoints));
    auto cp = std::make_shared<CheckpointData>();
    cp->nranks = r.i32();
    cp->iterations = r.i32();
    cp->state_reals.resize(r.u64());
    r.u64_array(cp->state_reals);
    cp->signature = read_doubles(r);
    cp->final_profiles = read_profiles(r);
    const auto cp_ranks = static_cast<std::size_t>(cp->nranks);
    const std::uint64_t nbound = r.u64();
    cp->boundaries.reserve(nbound);
    for (std::uint64_t b = 0; b < nbound; ++b) {
      BoundaryRecord rec;
      rec.iter = r.i32();
      const bool stored = r.u8() != 0;
      rec.profiles = read_profiles(r);
      rec.digests.resize(r.u64());
      r.u64_array(rec.digests);
      if (rec.profiles.size() != cp_ranks || rec.digests.size() != cp_ranks) {
        throw util::BinError("golden store: boundary has the wrong shape");
      }
      if (stored) {
        rec.state.reserve(cp_ranks);
        for (std::size_t rank = 0; rank < cp_ranks; ++rank) {
          const std::uint64_t len = r.u64();
          // Borrowed straight out of the mapping: the fast-forward
          // restore memcpys these bytes once, into the live StateViews.
          rec.state.push_back(StateBytes::borrowed(r.bytes(len)));
        }
      }
      cp->boundaries.push_back(std::move(rec));
    }
    cp->backing = map;  // pins the mapping behind the borrowed spans
    golden->checkpoints = std::move(cp);
  }
  return golden;
}

/// Write `payload` to `path` atomically (temp + rename). Throws
/// std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path,
                       std::span<const std::byte> payload) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) {
      throw std::runtime_error("golden store: cannot write " + tmp);
    }
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out) {
      throw std::runtime_error("golden store: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("golden store: cannot rename into " + path);
  }
}

/// Unlink a corrupt data file so the next fill starts clean, and count
/// the refill (always observable, even on the uncounted re-check path).
void unlink_corrupt(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  telemetry::count(telemetry::Counter::GoldenStoreRefills);
}

StoreFormat format_from_runtime() {
  // Binary output is gated on binio support; the JSON fallback keeps
  // exotic hosts functional (and able to share a store directory).
  if (!util::binio_host_supported()) return StoreFormat::JsonV1;
  return util::RuntimeOptions::global().store_binary ? StoreFormat::BinaryV2
                                                     : StoreFormat::JsonV1;
}

}  // namespace

GoldenStore::GoldenStore(std::string dir)
    : GoldenStore(std::move(dir), format_from_runtime()) {}

GoldenStore::GoldenStore(std::string dir, StoreFormat write_format)
    : dir_(std::move(dir)), write_format_(write_format) {
  if (write_format_ == StoreFormat::BinaryV2 &&
      !util::binio_host_supported()) {
    write_format_ = StoreFormat::JsonV1;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("golden store: cannot create directory " + dir_ +
                             ": " + ec.message());
  }
}

std::string GoldenStore::path_for(const apps::App& app, int nranks) const {
  return path_for(app, nranks, write_format_);
}

std::string GoldenStore::path_for(const apps::App& app, int nranks,
                                  StoreFormat format) const {
  const std::string stem =
      dir_ + "/" + sanitize(app.label()) + "-r" + std::to_string(nranks);
  return format == StoreFormat::BinaryV2 ? stem + "-v2.bin"
                                         : stem + "-v1.json";
}

std::shared_ptr<const GoldenRun> GoldenStore::load(const apps::App& app,
                                                   int nranks) {
  return load_impl(app, nranks, /*count=*/true);
}

std::shared_ptr<const GoldenRun> GoldenStore::load_impl(const apps::App& app,
                                                        int nranks,
                                                        bool count) {
  const auto miss = [&]() -> std::shared_ptr<const GoldenRun> {
    if (count) telemetry::count(telemetry::Counter::GoldenStoreMisses);
    return nullptr;
  };
  const auto hit = [&](std::shared_ptr<const GoldenRun> golden) {
    if (count) telemetry::count(telemetry::Counter::GoldenStoreHits);
    return golden;
  };

  // v2 binary first (never on hosts that cannot parse it — their file,
  // if any, may belong to a supported host sharing the directory).
  if (util::binio_host_supported()) {
    const std::string v2 = path_for(app, nranks, StoreFormat::BinaryV2);
    if (const auto map = util::MappedFile::open(v2)) {
      try {
        auto golden = decode_golden_v2(map, app.label(), nranks);
        if (golden != nullptr) return hit(std::move(golden));
        return miss();  // checkpoint-settings mismatch, file left in place
      } catch (const std::exception&) {
        unlink_corrupt(v2);  // fall through to the v1 file, if any
      }
    }
  }

  const std::string v1 = path_for(app, nranks, StoreFormat::JsonV1);
  std::ifstream in(v1);
  if (!in) return miss();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const util::Json json = util::Json::parse(buffer.str());
    if (json.at("schema").as_string() != kStoreSchema ||
        json.at("app").as_string() != app.label() ||
        static_cast<int>(json.at("nranks").as_int()) != nranks) {
      throw util::JsonError("golden store: key mismatch");
    }
    const bool file_ckpt = json.at("checkpoint_enabled").as_bool();
    const auto file_budget =
        static_cast<std::size_t>(json.at("checkpoint_budget").as_int());
    if (!file_ckpt || file_budget != checkpoint_budget()) {
      return miss();
    }
    auto golden =
        std::make_shared<GoldenRun>(golden_from_json(json.at("golden")));
    if (write_format_ == StoreFormat::BinaryV2) {
      // Store upgrade: the v1 file is served this once, rewritten as v2,
      // and removed, so the key converges on the binary format.
      try {
        put(app, nranks, *golden);
      } catch (const std::exception&) {
        // An unwritable store is a performance problem, not an error.
      }
    }
    return hit(std::move(golden));
  } catch (const std::exception&) {
    // Corrupt, truncated, or mismatched content: unlink so the next fill
    // starts clean, and report a plain miss.
    unlink_corrupt(v1);
    return miss();
  }
}

void GoldenStore::put(const apps::App& app, int nranks,
                      const GoldenRun& golden) {
  const std::string path = path_for(app, nranks);
  if (write_format_ == StoreFormat::BinaryV2) {
    write_file_atomic(path, encode_golden_v2(app.label(), nranks, golden));
  } else {
    util::JsonObject obj;
    obj["schema"] = util::Json(kStoreSchema);
    obj["app"] = util::Json(app.label());
    obj["nranks"] = util::Json(nranks);
    obj["checkpoint_enabled"] = util::Json(true);
    obj["checkpoint_budget"] = util::Json(checkpoint_budget());
    obj["golden"] = golden_to_json(golden);
    const std::string text = util::Json(std::move(obj)).dump(2) + "\n";
    write_file_atomic(
        path, std::span<const std::byte>(
                  reinterpret_cast<const std::byte*>(text.data()),
                  text.size()));
  }
  // Drop the other format's file so the key stays canonical (loads would
  // otherwise keep serving whichever format sorts first).
  const StoreFormat other = write_format_ == StoreFormat::BinaryV2
                                ? StoreFormat::JsonV1
                                : StoreFormat::BinaryV2;
  std::error_code ec;
  std::filesystem::remove(path_for(app, nranks, other), ec);
}

std::shared_ptr<const GoldenRun> GoldenStore::load_or_fill(
    const apps::App& app, int nranks,
    const std::function<GoldenRun()>& profile) {
  if (auto golden = load(app, nranks)) return golden;
  const std::string lock = path_for(app, nranks) + ".lock";
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      try {
        // Re-check under the lock: a competing filler may have completed
        // between our miss and the acquisition.
        auto golden = load_impl(app, nranks, /*count=*/false);
        if (golden == nullptr) {
          golden = std::make_shared<GoldenRun>(profile());
          put(app, nranks, *golden);
        }
        ::unlink(lock.c_str());
        return golden;
      } catch (...) {
        ::unlink(lock.c_str());
        throw;
      }
    }
    if (errno != EEXIST) break;  // unexpected: fall through to local profile
    // Another process is filling: poll for its result, then declare the
    // lock stale and take over.
    const auto deadline = std::chrono::steady_clock::now() + kLockBudget;
    bool holder_gone = false;
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(kLockPoll);
      if (auto golden = load_impl(app, nranks, /*count=*/false)) {
        telemetry::count(telemetry::Counter::GoldenStoreHits);
        return golden;
      }
      if (::access(lock.c_str(), F_OK) != 0) {
        holder_gone = true;  // holder released without a usable file: retry
        break;
      }
    }
    if (!holder_gone) {
      // The poll budget expired with the lock still present: a crashed
      // filler's leftovers. Break the lock and contend again.
      telemetry::count(telemetry::Counter::GoldenStoreLockTakeovers);
    }
    ::unlink(lock.c_str());
  }
  // Contended past the budget twice over: profile locally without
  // persisting rather than fail the campaign.
  return std::make_shared<GoldenRun>(profile());
}

}  // namespace resilience::harness
