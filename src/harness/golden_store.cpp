#include "harness/golden_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "harness/checkpoint.hpp"
#include "harness/serialize.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace resilience::harness {

namespace {

constexpr const char* kStoreSchema = "resilience-golden-store/1";
/// How long a contender waits for a lock holder before declaring the lock
/// stale (a crashed filler) and taking over.
constexpr auto kLockBudget = std::chrono::seconds(10);
constexpr auto kLockPoll = std::chrono::milliseconds(100);

/// App label + rank count, reduced to a portable file stem: alphanumerics
/// kept, every other run of characters collapsed to one '_'.
std::string sanitize(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out.push_back(c);
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

}  // namespace

GoldenStore::GoldenStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("golden store: cannot create directory " + dir_ +
                             ": " + ec.message());
  }
}

std::string GoldenStore::path_for(const apps::App& app, int nranks) const {
  return dir_ + "/" + sanitize(app.label()) + "-r" + std::to_string(nranks) +
         "-v1.json";
}

std::shared_ptr<const GoldenRun> GoldenStore::load(const apps::App& app,
                                                   int nranks) {
  return load_impl(app, nranks, /*count=*/true);
}

std::shared_ptr<const GoldenRun> GoldenStore::load_impl(const apps::App& app,
                                                        int nranks,
                                                        bool count) {
  const std::string path = path_for(app, nranks);
  const auto miss = [&]() -> std::shared_ptr<const GoldenRun> {
    if (count) telemetry::count(telemetry::Counter::GoldenStoreMisses);
    return nullptr;
  };
  std::ifstream in(path);
  if (!in) return miss();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const util::Json json = util::Json::parse(buffer.str());
    if (json.at("schema").as_string() != kStoreSchema ||
        json.at("app").as_string() != app.label() ||
        static_cast<int>(json.at("nranks").as_int()) != nranks) {
      throw util::JsonError("golden store: key mismatch");
    }
    // A file captured under other checkpoint settings is valid but not
    // what this process would have profiled: the fast-forward path would
    // diverge from a fresh run. Miss without unlinking — a fill renames
    // over it.
    const bool file_ckpt = json.at("checkpoint_enabled").as_bool();
    const auto file_budget =
        static_cast<std::size_t>(json.at("checkpoint_budget").as_int());
    if (file_ckpt != checkpoint_enabled() ||
        (file_ckpt && file_budget != checkpoint_budget())) {
      return miss();
    }
    auto golden =
        std::make_shared<GoldenRun>(golden_from_json(json.at("golden")));
    if (count) telemetry::count(telemetry::Counter::GoldenStoreHits);
    return golden;
  } catch (const std::exception&) {
    // Corrupt, truncated, or mismatched content: unlink so the next fill
    // starts clean, and report a plain miss.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return miss();
  }
}

void GoldenStore::put(const apps::App& app, int nranks,
                      const GoldenRun& golden) {
  const std::string path = path_for(app, nranks);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  util::JsonObject obj;
  obj["schema"] = util::Json(kStoreSchema);
  obj["app"] = util::Json(app.label());
  obj["nranks"] = util::Json(nranks);
  obj["checkpoint_enabled"] = util::Json(checkpoint_enabled());
  obj["checkpoint_budget"] = util::Json(checkpoint_budget());
  obj["golden"] = golden_to_json(golden);
  {
    std::ofstream out(tmp);
    if (!out) {
      throw std::runtime_error("golden store: cannot write " + tmp);
    }
    out << util::Json(std::move(obj)).dump(2) << '\n';
    if (!out) {
      throw std::runtime_error("golden store: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("golden store: cannot rename into " + path);
  }
}

std::shared_ptr<const GoldenRun> GoldenStore::load_or_fill(
    const apps::App& app, int nranks,
    const std::function<GoldenRun()>& profile) {
  if (auto golden = load(app, nranks)) return golden;
  const std::string lock = path_for(app, nranks) + ".lock";
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      try {
        // Re-check under the lock: a competing filler may have completed
        // between our miss and the acquisition.
        auto golden = load_impl(app, nranks, /*count=*/false);
        if (golden == nullptr) {
          golden = std::make_shared<GoldenRun>(profile());
          put(app, nranks, *golden);
        }
        ::unlink(lock.c_str());
        return golden;
      } catch (...) {
        ::unlink(lock.c_str());
        throw;
      }
    }
    if (errno != EEXIST) break;  // unexpected: fall through to local profile
    // Another process is filling: poll for its result, then declare the
    // lock stale and take over.
    const auto deadline = std::chrono::steady_clock::now() + kLockBudget;
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(kLockPoll);
      if (auto golden = load_impl(app, nranks, /*count=*/false)) {
        telemetry::count(telemetry::Counter::GoldenStoreHits);
        return golden;
      }
      if (::access(lock.c_str(), F_OK) != 0) break;  // holder gone: retry
    }
    ::unlink(lock.c_str());  // stale (or just released): contend again
  }
  // Contended past the budget twice over: profile locally without
  // persisting rather than fail the campaign.
  return std::make_shared<GoldenRun>(profile());
}

}  // namespace resilience::harness
