// Memoized golden (fault-free) runs, keyed by (app label, nranks).
//
// A study profiles the same deployment repeatedly — every serial sweep
// point re-profiles nranks=1, and the small-scale, parallel-unique and
// measured-large campaigns each re-profile their own scale. Profiling is
// deterministic in (app, nranks), so one golden run per key serves every
// campaign of the study. The cache is single-flight: concurrent requests
// for one key block on a single profiling run instead of duplicating it.
#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "harness/runner.hpp"

namespace resilience::harness {

class Executor;
class GoldenStore;

class GoldenCache {
 public:
  GoldenCache() = default;
  /// A cache backed by an on-disk store: in-process misses consult the
  /// store before profiling (and persist what they profile), so repeated
  /// invocations — and the shard worker processes of one campaign — share
  /// one golden pre-pass. The store must outlive the cache.
  explicit GoldenCache(GoldenStore* store) : store_(store) {}

  /// Return the golden run of (app.label(), nranks), profiling it on a
  /// miss. With a non-null `executor` the profiling run is admitted
  /// through it with weight nranks, so golden runs obey the same
  /// rank-concurrency budget as campaign trials. Profiling errors
  /// propagate to every waiter of the key; the failed entry is evicted so
  /// a later call can retry.
  std::shared_ptr<const GoldenRun> get_or_profile(
      const apps::App& app, int nranks,
      std::chrono::milliseconds deadlock_timeout =
          std::chrono::milliseconds{10'000},
      Executor* executor = nullptr);

  /// Requests served from an existing (possibly in-flight) entry.
  [[nodiscard]] std::size_t hits() const;
  /// Requests that had to profile.
  [[nodiscard]] std::size_t misses() const;
  /// Hits that found the entry still in flight and had to block on the
  /// leader's single-flight profiling run.
  [[nodiscard]] std::size_t waits() const;

 private:
  using Key = std::pair<std::string, int>;
  using Future = std::shared_future<std::shared_ptr<const GoldenRun>>;

  GoldenStore* store_ = nullptr;
  mutable std::mutex mu_;
  std::map<Key, Future> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t waits_ = 0;
};

}  // namespace resilience::harness
