// The deterministic trial machinery of one deployment, factored out of
// CampaignRunner so in-process and multi-process (src/shard) execution
// share one implementation.
//
// Two pieces:
//
//   * TrialSpace — plan drawing + single-trial execution. A trial is
//     identified by a TrialRef, and its randomness is a pure function of
//     (config.seed, ref): uniform trials draw from
//     derive_seed(seed, index), stratified trials from
//     derive_seed(seed, stratum-grid-id, index). That makes trial
//     identity placement-independent: any process that holds the same
//     (app, config, golden) executes the same ref to the same outcome.
//
//   * AdaptiveDriver — the adaptive engine's control side (DESIGN.md
//     §12): per-batch Neyman allocation over the strata, CI envelope,
//     and the stop rule, all evaluated on tallies folded in deterministic
//     (stratum, index) order. The driver never runs trials itself, which
//     is what lets a shard coordinator run the policy while worker
//     processes run the refs.
//
// CampaignRunner::run composes both with the campaign-level bookkeeping
// (scope, golden acquisition, contamination histograms); results are
// bit-identical to the pre-split implementation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "harness/campaign.hpp"
#include "util/rng.hpp"

namespace resilience::harness {

/// Stratum id marking a uniform (unstratified) draw.
inline constexpr std::uint64_t kNoStratum = ~std::uint64_t{0};

/// Identity of one trial, independent of where it executes.
struct TrialRef {
  /// fsefi::stratum_index grid id, or kNoStratum for the uniform stream.
  std::uint64_t stratum = kNoStratum;
  /// Index within the stratum's substream (or the global trial index for
  /// uniform draws) — the seed-determining half of the identity.
  std::uint64_t index = 0;
  /// Global executed-order label; trace diagnostics only.
  std::uint64_t tag = 0;
};

/// What one executed trial produced.
struct TrialResult {
  Outcome outcome = Outcome::Failure;
  /// Ranks contaminated, -1 when unknown (torn-down job).
  int contaminated = -1;
};

/// Plan drawing and execution for one (app, config, golden) deployment.
/// Stateless after construction; run() is safe to call concurrently from
/// executor workers (each call pushes no scope of its own — counts land
/// in the caller's innermost metric scope).
class TrialSpace {
 public:
  /// One stratum of the (region x kind x decile) grid with a non-zero
  /// population, in grid order. The driver allocates over these.
  struct StratumInfo {
    fsefi::Stratum stratum;
    std::uint64_t id = 0;  ///< grid index: RNG substream + ordering key
    std::vector<std::uint64_t> rank_pop;  ///< per-rank decile population
    std::uint64_t population = 0;
    double weight = 0.0;  ///< population / total_ops (the W_s of §12)
  };

  /// Holds references to `app` and `golden`: both must outlive the space.
  /// Throws std::invalid_argument for unsupported scenario combinations
  /// (fail-stop outside the register domain or off the fixed arrival,
  /// Poisson resident-state, UniformRank outside the register domain) and
  /// std::runtime_error when the scenario's sample space is empty — no
  /// operations match the kind/region filters, no Real elements are
  /// delivered (payload), or the golden run recorded no boundary state
  /// (resident state).
  TrialSpace(const apps::App& app, const DeploymentConfig& config,
             const GoldenRun& golden);

  /// Execute one trial. ref.stratum must be kNoStratum or the id of one
  /// of strata().
  [[nodiscard]] TrialResult run(const TrialRef& ref) const;

  /// Whether this deployment stratifies under its adaptive config: the
  /// engine is on, stratification is requested, the deployment is
  /// single-error UniformInstruction, and at least one stratum is
  /// populated.
  [[nodiscard]] bool stratified() const noexcept { return !strata_.empty(); }
  [[nodiscard]] const std::vector<StratumInfo>& strata() const noexcept {
    return strata_;
  }
  [[nodiscard]] std::uint64_t total_ops() const noexcept { return total_ops_; }
  [[nodiscard]] const GoldenRun& golden() const noexcept { return golden_; }

  /// Index into strata() of the stratum with grid id `id`; throws
  /// std::out_of_range for an id that is not one of strata().
  [[nodiscard]] std::size_t stratum_slot(std::uint64_t id) const;

 private:
  [[nodiscard]] TrialResult execute(
      std::uint64_t tag, std::vector<fsefi::InjectionPlan> plans) const;
  [[nodiscard]] TrialResult execute(std::uint64_t tag, int target,
                                    fsefi::InjectionPlan plan) const;
  /// PoissonTimeline trials: draw the arrival sequence over the global
  /// sample-space timeline and expand each arrival into its rank's plan.
  [[nodiscard]] TrialResult run_poisson(std::uint64_t tag,
                                        util::Xoshiro256& rng) const;

  const apps::App& app_;
  DeploymentConfig config_;
  const GoldenRun& golden_;
  /// Per-rank sample-space sizes of the scenario's domain: filtered
  /// dynamic ops (RegisterOperand), delivered Reals (MessagePayload), or
  /// live-state Real elements (ResidentState).
  std::vector<std::uint64_t> rank_ops_;
  std::uint64_t total_ops_ = 0;
  /// Recorded golden boundaries (ResidentState only; 0 otherwise).
  std::uint64_t state_boundaries_ = 0;
  RunOptions run_opts_;
  std::vector<StratumInfo> strata_;  ///< empty unless stratifying
  std::vector<std::size_t> stratum_by_id_;  ///< grid id -> strata_ index
};

/// The adaptive engine's allocation + stopping policy, separated from
/// trial execution. Usage:
///
///   AdaptiveDriver driver(config, space);
///   while (!(refs = driver.next_batch()).empty()) {
///     results = run them all (any processes, any order);
///     driver.fold(refs, results);   // in ref order
///   }
///   stats = driver.stats();
///
/// Deterministic in (config, golden): the ref sequence and the stopping
/// point depend only on the folded tallies, never on where or when the
/// trials ran.
class AdaptiveDriver {
 public:
  AdaptiveDriver(const DeploymentConfig& config, const TrialSpace& space);

  /// The next batch of refs in deterministic (stratum, index) order;
  /// empty once the campaign converged or reached its trial cap.
  [[nodiscard]] std::vector<TrialRef> next_batch();

  /// Fold a completed batch's results (same order as the refs issued) and
  /// evaluate the stop rule.
  void fold(const std::vector<TrialRef>& refs,
            const std::vector<TrialResult>& results);

  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }

  /// Finalized record: stopping point, CI envelope, post-stratified
  /// propagation. Call after next_batch() returned empty.
  [[nodiscard]] AdaptiveStats stats() const;

 private:
  struct Tally {
    FaultInjectionResult tally;
    std::vector<std::size_t> hist;  ///< contamination counts
    std::size_t drawn = 0;          ///< trials assigned so far
  };

  [[nodiscard]] std::vector<std::size_t> allocate(std::size_t n);
  void compute_envelope(bool covered);
  [[nodiscard]] double target_half_width(double est) const;

  const DeploymentConfig& config_;
  const TrialSpace& space_;
  std::size_t cap_;
  std::size_t batch_size_;
  std::size_t min_trials_;
  bool use_strata_;
  std::vector<Tally> tallies_;  ///< parallel to space_.strata()
  FaultInjectionResult overall_;
  std::size_t executed_ = 0;
  bool stopped_ = false;
  StopReason stop_ = StopReason::TrialCap;
  std::array<OutcomeInterval, 3> envelope_{};
};

}  // namespace resilience::harness
