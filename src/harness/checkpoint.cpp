#include "harness/checkpoint.hpp"

#include <atomic>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "fsefi/fault_context.hpp"
#include "simmpi/comm.hpp"
#include "telemetry/telemetry.hpp"
#include "util/options.hpp"

namespace resilience::harness {

namespace {

// -1 = follow the environment, 0 = forced off, 1 = forced on.
std::atomic<int> g_checkpoint_override{-1};

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Word-wide FNV-1a step: cheap, order-sensitive, platform-stable.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t word) noexcept {
  return (h ^ word) * kFnvPrime;
}

}  // namespace

bool checkpoint_enabled() noexcept {
  const int forced = g_checkpoint_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_options = util::RuntimeOptions::global().checkpoint;
  return from_options;
}

void set_checkpoint_enabled(bool enabled) noexcept {
  g_checkpoint_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::size_t checkpoint_budget() {
  const std::size_t budget = util::RuntimeOptions::global().checkpoint_budget;
  return budget == 0 ? 1 : budget;
}

std::uint64_t digest_views(std::span<const apps::StateView> views) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const apps::StateView& v : views) {
    h = mix(h, static_cast<std::uint64_t>(v.kind));
    h = mix(h, v.count);
    if (v.kind == apps::StateView::Kind::Reals) {
      for (const fsefi::Real& r : v.as_reals()) {
        h = mix(h, std::bit_cast<std::uint64_t>(r.value()));
      }
    } else {
      for (const double d : v.as_doubles()) {
        h = mix(h, std::bit_cast<std::uint64_t>(d));
      }
    }
  }
  return h;
}

bool views_tainted(std::span<const apps::StateView> views) noexcept {
  for (const apps::StateView& v : views) {
    if (v.kind != apps::StateView::Kind::Reals) continue;
    for (const fsefi::Real& r : v.as_reals()) {
      if (r.tainted()) return true;
    }
  }
  return false;
}

std::vector<std::byte> serialize_views(
    std::span<const apps::StateView> views) {
  std::size_t total = 0;
  for (const apps::StateView& v : views) total += v.byte_size();
  std::vector<std::byte> out(total);
  std::size_t off = 0;
  for (const apps::StateView& v : views) {
    std::memcpy(out.data() + off, v.data, v.byte_size());
    off += v.byte_size();
  }
  return out;
}

void restore_views(std::span<const std::byte> bytes,
                   std::span<const apps::StateView> views) {
  std::size_t total = 0;
  for (const apps::StateView& v : views) total += v.byte_size();
  if (total != bytes.size()) {
    throw std::runtime_error(
        "checkpoint restore: state shape differs from capture");
  }
  std::size_t off = 0;
  for (const apps::StateView& v : views) {
    std::memcpy(v.data, bytes.data() + off, v.byte_size());
    off += v.byte_size();
  }
}

const BoundaryRecord* CheckpointData::find(int iter) const noexcept {
  // Boundaries are contiguous (record k has iter k + 1) for every app in
  // the suite; fall back to a scan so the lookup never depends on it.
  if (iter >= 1) {
    const auto idx = static_cast<std::size_t>(iter - 1);
    if (idx < boundaries.size() && boundaries[idx].iter == iter) {
      return &boundaries[idx];
    }
  }
  for (const BoundaryRecord& b : boundaries) {
    if (b.iter == iter) return &b;
  }
  return nullptr;
}

const BoundaryRecord* select_resume(
    const CheckpointData& data,
    const std::vector<fsefi::InjectionPlan>& plans) noexcept {
  // The delivered-Real stream position is not part of the boundary
  // record, so a plan with payload faults admits no provably-safe
  // restore point at all.
  for (const fsefi::InjectionPlan& plan : plans) {
    if (!plan.payload_points.empty()) return nullptr;
  }
  const BoundaryRecord* best = nullptr;
  for (const BoundaryRecord& rec : data.boundaries) {
    if (!rec.stored() || rec.iter <= 0) continue;
    if (rec.profiles.size() != plans.size()) return nullptr;
    bool eligible = true;
    for (std::size_t r = 0; r < plans.size(); ++r) {
      const fsefi::InjectionPlan& plan = plans[r];
      // The first flip fires during the filtered op at index op_index;
      // the prefix up to this boundary is fault-free iff fewer filtered
      // ops have executed by then. Points are sorted, so bounding the
      // first bounds every later fault of the timeline too.
      if (!plan.points.empty() &&
          rec.profiles[r].matching(plan.kinds, plan.regions) >
              plan.points.front().op_index) {
        eligible = false;
        break;
      }
      // Resuming at iteration R fires boundary callbacks for records
      // R + 1 onward: a state fault at boundary b is preserved iff
      // rec.iter < b.
      if (!plan.state_faults.empty() &&
          rec.iter >= plan.state_faults.front().boundary) {
        eligible = false;
        break;
      }
    }
    if (eligible && (best == nullptr || rec.iter > best->iter)) best = &rec;
  }
  return best;
}

std::unique_ptr<CheckpointData> assemble_checkpoints(
    CheckpointCapture&& cap) {
  if (cap.ranks.empty()) return nullptr;
  const std::size_t nbound = cap.ranks.front().size();
  if (nbound == 0) return nullptr;
  for (const auto& rank : cap.ranks) {
    if (rank.size() != nbound) {
      throw std::runtime_error(
          "golden capture: ranks disagree on boundary count");
    }
  }
  auto data = std::make_unique<CheckpointData>();
  data->nranks = static_cast<int>(cap.ranks.size());
  data->state_reals = std::move(cap.state_reals);
  data->boundaries.resize(nbound);
  for (std::size_t b = 0; b < nbound; ++b) {
    BoundaryRecord& rec = data->boundaries[b];
    rec.iter = cap.ranks.front()[b].iter;
    const bool stored = !cap.ranks.front()[b].state.empty();
    rec.profiles.reserve(cap.ranks.size());
    rec.digests.reserve(cap.ranks.size());
    if (stored) rec.state.reserve(cap.ranks.size());
    for (auto& rank : cap.ranks) {
      RankBoundary& rb = rank[b];
      if (rb.iter != rec.iter) {
        throw std::runtime_error(
            "golden capture: ranks disagree on boundary iteration");
      }
      if (rb.state.empty() == stored) {
        throw std::runtime_error(
            "golden capture: ranks disagree on stored boundaries");
      }
      rec.profiles.push_back(rb.profile);
      rec.digests.push_back(rb.digest);
      if (stored) rec.state.push_back(std::move(rb.state));
    }
  }
  return data;
}

int CaptureControl::begin(std::span<const apps::StateView> views) {
  std::uint64_t reals = 0;
  for (const apps::StateView& v : views) {
    if (v.kind == apps::StateView::Kind::Reals) reals += v.count;
  }
  state_reals_ = reals;
  return 0;
}

bool CaptureControl::boundary(simmpi::Comm&, int iter,
                              std::span<const apps::StateView> views) {
  out_.push_back({});
  RankBoundary& rec = out_.back();
  rec.iter = iter + 1;
  if (const fsefi::FaultContext* ctx = fsefi::current_context()) {
    rec.profile = ctx->profile();
  }
  rec.digest = digest_views(views);
  if (rec.iter % stride_ == 0) {
    rec.state = serialize_views(views);
    ++stored_;
  }
  // Adaptive thinning: once the stored set exceeds the budget, double the
  // stride and drop snapshots that no longer conform. Depends only on the
  // boundary sequence, so every rank converges on the same subset.
  while (stored_ > budget_) {
    stride_ *= 2;
    stored_ = 0;
    for (RankBoundary& b : out_) {
      if (b.state.empty()) continue;
      if (b.iter % stride_ == 0) {
        ++stored_;
      } else {
        b.state.clear();
        b.state.shrink_to_fit();
      }
    }
  }
  return true;
}

namespace {

/// Flip `width` bits of the primary value of the `element`-th Real across
/// the views (declaration order; Doubles views are not part of the sample
/// space). The shadow keeps the fault-free value, so divergence tracking
/// sees the corruption immediately.
void apply_state_fault(const fsefi::StateFault& fault,
                       std::span<const apps::StateView> views) {
  std::uint64_t base = 0;
  for (const apps::StateView& v : views) {
    if (v.kind != apps::StateView::Kind::Reals) continue;
    if (fault.element < base + v.count) {
      fsefi::Real& r = v.as_reals()[static_cast<std::size_t>(
          fault.element - base)];
      r = fsefi::Real::corrupted(
          fsefi::flip_bits(r.value(), fault.bit, fault.width), r.shadow());
      if (fsefi::FaultContext* ctx = fsefi::current_context()) {
        ctx->note_external_taint();
      }
      telemetry::count(telemetry::Counter::ScenarioStateFlips);
      telemetry::trace_instant("scenario", "state_flip", "element",
                               fault.element);
      return;
    }
    base += v.count;
  }
  throw std::logic_error(
      "state fault element beyond the rank's live-state Reals");
}

}  // namespace

int FastForwardControl::begin(std::span<const apps::StateView> views) {
  if (resume_ == nullptr) return 0;
  restore_views(resume_->state[static_cast<std::size_t>(rank_)].bytes(),
                views);
  if (fsefi::FaultContext* ctx = fsefi::current_context()) {
    ctx->fast_forward(resume_->profiles[static_cast<std::size_t>(rank_)]);
  }
  return resume_->iter;
}

bool FastForwardControl::boundary(simmpi::Comm& comm, int iter,
                                  std::span<const apps::StateView> views) {
  // Inject before the quiet check: a boundary that just received a flip
  // cannot digest-match the golden run, and must not.
  while (next_state_ < plan_.state_faults.size() &&
         plan_.state_faults[next_state_].boundary == iter + 1) {
    apply_state_fault(plan_.state_faults[next_state_], views);
    ++next_state_;
  }
  int quiet = 0;
  const fsefi::FaultContext* ctx = fsefi::current_context();
  if (data_ != nullptr && ctx != nullptr &&
      ctx->injections_done() == plan_.points.size() &&
      ctx->payload_flips_done() == plan_.payload_points.size() &&
      next_state_ == plan_.state_faults.size()) {
    const BoundaryRecord* rec = data_->find(iter + 1);
    if (rec != nullptr && !views_tainted(views) &&
        digest_views(views) ==
            rec->digests[static_cast<std::size_t>(rank_)]) {
      quiet = 1;
    }
  }
  if (comm.allreduce_value(quiet, simmpi::Min{}) == 0) return true;
  exit_iter_ = iter + 1;
  return false;
}

}  // namespace resilience::harness
