// Fault-injection deployments and campaigns (paper Section 2).
//
// A *deployment* fixes the configuration — application, rank count, how
// many errors per test, which instruction kinds and code regions are
// eligible — and a *campaign* executes many independent fault-injection
// tests under that configuration, classifying each test as Success, SDC,
// or Failure and profiling how many ranks the error contaminated.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fsefi/scenario.hpp"
#include "harness/result.hpp"
#include "harness/runner.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace resilience::harness {

/// How the target rank of a trial is chosen.
enum class TargetSelection {
  /// Uniform over all eligible dynamic operations of the whole job (ranks
  /// are implicitly weighted by their operation counts) — matches "pick a
  /// random instruction during application execution".
  UniformInstruction,
  /// Uniform over ranks, then uniform over that rank's operations.
  UniformRank,
};

/// Adaptive campaign engine configuration (DESIGN.md §12). Default off:
/// with enabled == false CampaignRunner::run executes exactly
/// config.trials trials, bit-identical to a build without the engine.
struct AdaptiveConfig {
  bool enabled = false;
  /// Trials per batch. The stop rule is evaluated only at batch
  /// boundaries on the merged tallies, which is what makes adaptive
  /// stopping points reproducible for a given seed regardless of worker
  /// count or scheduler mode.
  std::size_t batch = 64;
  /// No stopping decision before this many trials: intervals on very
  /// small samples are too noisy to trust a stop.
  std::size_t min_trials = 128;
  /// Absolute CI half-width target every tracked outcome rate (Success,
  /// SDC, Failure) must meet before the campaign stops early.
  double ci_half_width = 0.02;
  /// Relative mode: > 0 replaces the absolute target for an outcome with
  /// estimate p by ci_relative * max(p, rare_threshold) — the
  /// rare-outcome floor keeps a zero-count outcome from demanding a
  /// zero-width interval.
  double ci_relative = 0.0;
  /// Two-sided normal quantile of every interval (1.96 ~ 95%).
  double confidence_z = 1.96;
  /// Outcomes whose pooled rate sits below this (or whose complement
  /// does, or with < 8 counts either way) use Clopper–Pearson bounds:
  /// exact coverage where the Wilson normal approximation under-covers.
  double rare_threshold = 0.02;
  /// Stratified sampling over (region x op kind x dynamic-op decile)
  /// with Neyman-refined allocation and post-stratified estimates.
  /// Applies to single-error UniformInstruction deployments; other
  /// deployments keep uniform drawing (early stopping still applies).
  bool stratify = true;
  /// Dynamic-op deciles per (region, kind) cell.
  int deciles = 10;

  /// Resolve defaults from the RESILIENCE_ADAPTIVE* knobs
  /// (util::RuntimeOptions). Library callers get the engine only by
  /// opting in here or by setting fields explicitly.
  static AdaptiveConfig from_runtime();
};

/// Why an adaptive campaign stopped drawing trials.
enum class StopReason : std::uint8_t {
  /// Every tracked outcome met its CI half-width target.
  Converged,
  /// The config.trials cap was reached before convergence.
  TrialCap,
};

const char* to_string(StopReason reason) noexcept;

/// One outcome's rate estimate with its confidence envelope. For
/// stratified campaigns the rate is the post-stratified estimate — an
/// unbiased estimate of the uniform-injection campaign the paper defines
/// — and the bounds come from the stratified variance (or, on the rare
/// tail, Clopper–Pearson on the pooled counts, widened to contain the
/// post-stratified point).
struct OutcomeInterval {
  double rate = 0.0;
  double lo = 0.0;
  double hi = 1.0;
  bool exact = false;  ///< true when the bounds are Clopper–Pearson

  [[nodiscard]] double half_width() const noexcept { return (hi - lo) / 2.0; }
  [[nodiscard]] bool contains(double p) const noexcept {
    return p >= lo && p <= hi;
  }
};

/// What the adaptive engine did and estimated. Absent from fixed runs.
struct AdaptiveStats {
  std::size_t trials_requested = 0;  ///< the config.trials cap
  std::size_t trials_executed = 0;
  StopReason stop_reason = StopReason::TrialCap;
  bool stratified = false;
  std::size_t strata = 1;  ///< non-empty strata sampled (1 = unstratified)
  OutcomeInterval success;
  OutcomeInterval sdc;
  OutcomeInterval failure;
  /// Post-stratified propagation probabilities r_x (x = 1..nranks);
  /// empty for unstratified runs (raw histogram normalization applies).
  std::vector<double> propagation;

  [[nodiscard]] const OutcomeInterval& envelope(Outcome o) const noexcept {
    return (o == Outcome::Success) ? success
                                   : (o == Outcome::SDC) ? sdc : failure;
  }
  /// Requested / executed — the paper-campaign cost this run avoided.
  [[nodiscard]] double trial_reduction() const noexcept {
    if (trials_executed == 0) return 1.0;
    return static_cast<double>(trials_requested) /
           static_cast<double>(trials_executed);
  }
};

struct DeploymentConfig {
  int nranks = 1;
  /// Errors injected per fault-injection test. For parallel deployments
  /// all errors of one test are injected into the same target rank (the
  /// paper's multi-error tests run serially; parallel tests use 1 error).
  int errors_per_test = 1;
  /// What is injected and when: the full fault-scenario descriptor
  /// (domain, pattern, arrival model, instruction-kind and code-region
  /// filters, MTBF knob). The default value reproduces the paper's
  /// campaigns — single-bit register flips at a fixed drawn operation.
  fsefi::FaultScenario scenario;
  std::size_t trials = 400;
  std::uint64_t seed = 20180813;  // ICPP 2018 opening day
  TargetSelection selection = TargetSelection::UniformInstruction;
  /// Hang guard: budget = factor * fault-free max rank ops + slack.
  double hang_budget_factor = 8.0;
  std::uint64_t hang_budget_slack = 1u << 16;
  std::chrono::milliseconds deadlock_timeout{10'000};
  /// Campaign-executor worker count. 0 = auto (RESILIENCE_THREADS env or
  /// hardware concurrency); 1 = the serial inline path. Execution policy
  /// only: results are bit-identical for every value (trials have
  /// independent per-trial seed streams and merge in trial order), so this
  /// is not part of the deployment's identity — serialization and
  /// merge_campaigns ignore it.
  int max_workers = 0;
  /// Adaptive engine (DESIGN.md §12); disabled by default, in which case
  /// exactly `trials` tests run and results are bit-identical to a
  /// config without this member. When enabled, `trials` becomes the cap
  /// and `seed` still fully determines every drawn plan.
  AdaptiveConfig adaptive;
};

/// Everything a campaign produced.
struct CampaignResult {
  DeploymentConfig config;
  FaultInjectionResult overall;
  /// contamination_hist[x] = tests whose error contaminated exactly x
  /// ranks (x in [0, nranks]). Bit-flip injection itself contaminates the
  /// target, so those trials land at x >= 1; fail-stop (RankCrash) trials
  /// corrupt no value and land at x = 0.
  std::vector<std::size_t> contamination_hist;
  /// Fault-injection result conditioned on x ranks contaminated.
  std::vector<FaultInjectionResult> by_contamination;
  /// The golden (fault-free) pre-pass of this deployment.
  GoldenRun golden;
  /// Time spent running injected trials (the paper's "fault injection
  /// time"; excludes the golden pre-pass). Summed across workers when the
  /// campaign ran in parallel, i.e. the serial-equivalent cost — the
  /// wall-clock of the serial path, and comparable across worker counts.
  double wall_seconds = 0.0;
  /// Execution-diagnostic counters and histograms of everything this
  /// campaign ran (trials, golden-cache traffic, checkpoint fast path,
  /// substrate activity), merged from the campaign's metric scope at the
  /// end of the run (DESIGN.md §10). Execution statistics only — the
  /// classified outcomes are bit-identical whatever these say — so not
  /// part of the serialized campaign schema.
  telemetry::MetricsSnapshot metrics;
  /// Adaptive-engine record: stopping point, CI envelope, post-stratified
  /// estimates. Engaged iff config.adaptive.enabled.
  std::optional<AdaptiveStats> adaptive;

  /// r_x (paper Eq. 3): probability that an injected error contaminates
  /// exactly x ranks, for x = 1..nranks. Returned as a vector of size
  /// nranks with r[0] == r_1. Post-stratified when the adaptive engine
  /// sampled strata (unbiased for the uniform campaign); the raw
  /// contamination histogram otherwise.
  [[nodiscard]] std::vector<double> propagation_probabilities() const;
};

class Executor;
class GoldenCache;

/// Shared infrastructure a campaign may run on. Both members are
/// optional: a null executor makes the campaign schedule trials by
/// itself (per config.max_workers), a null cache makes it profile its
/// own golden run. run_study wires one executor + one cache through all
/// of its campaigns so phases share a rank-concurrency budget and no
/// deployment is profiled twice.
struct CampaignContext {
  Executor* executor = nullptr;
  GoldenCache* golden_cache = nullptr;
  /// Parent metric scope (the study's): the campaign's own scope rolls
  /// its totals up into it when the campaign finishes.
  telemetry::MetricScope* metrics_parent = nullptr;
};

/// Runs fault-injection campaigns. Stateless apart from configuration;
/// each call is deterministic in (app, config.seed) — independent of
/// worker count and of any shared context.
class CampaignRunner {
 public:
  /// Execute `config.trials` fault-injection tests. Throws
  /// std::runtime_error when the deployment has an empty sample space
  /// (no operations match the filters) or the golden run fails.
  static CampaignResult run(const apps::App& app,
                            const DeploymentConfig& config);

  /// Same, on shared infrastructure (see CampaignContext).
  static CampaignResult run(const apps::App& app,
                            const DeploymentConfig& config,
                            const CampaignContext& context);

  /// Classify one run output against the golden signature (exposed for
  /// tests and for custom drivers).
  static Outcome classify(const RunOutput& out,
                          const std::vector<double>& golden_signature,
                          double tolerance);
};

/// Relative deviation used by the checker: max over components of
/// |a - b| / max(|b|, floor).
double signature_deviation(const std::vector<double>& a,
                           const std::vector<double>& b,
                           double floor = 1e-30);

}  // namespace resilience::harness
