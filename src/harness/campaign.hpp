// Fault-injection deployments and campaigns (paper Section 2).
//
// A *deployment* fixes the configuration — application, rank count, how
// many errors per test, which instruction kinds and code regions are
// eligible — and a *campaign* executes many independent fault-injection
// tests under that configuration, classifying each test as Success, SDC,
// or Failure and profiling how many ranks the error contaminated.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/result.hpp"
#include "harness/runner.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::harness {

/// How the target rank of a trial is chosen.
enum class TargetSelection {
  /// Uniform over all eligible dynamic operations of the whole job (ranks
  /// are implicitly weighted by their operation counts) — matches "pick a
  /// random instruction during application execution".
  UniformInstruction,
  /// Uniform over ranks, then uniform over that rank's operations.
  UniformRank,
};

struct DeploymentConfig {
  int nranks = 1;
  /// Errors injected per fault-injection test. For parallel deployments
  /// all errors of one test are injected into the same target rank (the
  /// paper's multi-error tests run serially; parallel tests use 1 error).
  int errors_per_test = 1;
  /// Instruction-type filter; the paper uses FP add and multiply.
  fsefi::KindMask kinds = fsefi::KindMask::AddMul;
  /// Fault pattern per injected error; the paper uses single-bit flips.
  fsefi::FaultPattern pattern = fsefi::FaultPattern::SingleBit;
  /// Code-region filter: All for parallel campaigns, Common for the serial
  /// emulation sweeps, ParallelUnique for the FI_par_unique estimate.
  fsefi::RegionMask regions = fsefi::RegionMask::All;
  std::size_t trials = 400;
  std::uint64_t seed = 20180813;  // ICPP 2018 opening day
  TargetSelection selection = TargetSelection::UniformInstruction;
  /// Hang guard: budget = factor * fault-free max rank ops + slack.
  double hang_budget_factor = 8.0;
  std::uint64_t hang_budget_slack = 1u << 16;
  std::chrono::milliseconds deadlock_timeout{10'000};
  /// Campaign-executor worker count. 0 = auto (RESILIENCE_THREADS env or
  /// hardware concurrency); 1 = the serial inline path. Execution policy
  /// only: results are bit-identical for every value (trials have
  /// independent per-trial seed streams and merge in trial order), so this
  /// is not part of the deployment's identity — serialization and
  /// merge_campaigns ignore it.
  int max_workers = 0;
};

/// Everything a campaign produced.
struct CampaignResult {
  DeploymentConfig config;
  FaultInjectionResult overall;
  /// contamination_hist[x] = tests whose error contaminated exactly x
  /// ranks (x in [0, nranks]; 0 never occurs — injection itself
  /// contaminates the target).
  std::vector<std::size_t> contamination_hist;
  /// Fault-injection result conditioned on x ranks contaminated.
  std::vector<FaultInjectionResult> by_contamination;
  /// The golden (fault-free) pre-pass of this deployment.
  GoldenRun golden;
  /// Time spent running injected trials (the paper's "fault injection
  /// time"; excludes the golden pre-pass). Summed across workers when the
  /// campaign ran in parallel, i.e. the serial-equivalent cost — the
  /// wall-clock of the serial path, and comparable across worker counts.
  double wall_seconds = 0.0;
  /// Execution-diagnostic counters and histograms of everything this
  /// campaign ran (trials, golden-cache traffic, checkpoint fast path,
  /// substrate activity), merged from the campaign's metric scope at the
  /// end of the run (DESIGN.md §10). Execution statistics only — the
  /// classified outcomes are bit-identical whatever these say — so not
  /// part of the serialized campaign schema.
  telemetry::MetricsSnapshot metrics;

  [[deprecated("read metrics.value(Counter::HarnessCheckpointRestores)")]]
  [[nodiscard]] std::size_t checkpoint_restores() const noexcept {
    return static_cast<std::size_t>(
        metrics.value(telemetry::Counter::HarnessCheckpointRestores));
  }
  [[deprecated("read metrics.value(Counter::HarnessEarlyExits)")]]
  [[nodiscard]] std::size_t early_exits() const noexcept {
    return static_cast<std::size_t>(
        metrics.value(telemetry::Counter::HarnessEarlyExits));
  }

  /// r_x (paper Eq. 3): probability that an injected error contaminates
  /// exactly x ranks, for x = 1..nranks. Returned as a vector of size
  /// nranks with r[0] == r_1.
  [[nodiscard]] std::vector<double> propagation_probabilities() const;
};

class Executor;
class GoldenCache;

/// Shared infrastructure a campaign may run on. Both members are
/// optional: a null executor makes the campaign schedule trials by
/// itself (per config.max_workers), a null cache makes it profile its
/// own golden run. run_study wires one executor + one cache through all
/// of its campaigns so phases share a rank-concurrency budget and no
/// deployment is profiled twice.
struct CampaignContext {
  Executor* executor = nullptr;
  GoldenCache* golden_cache = nullptr;
  /// Parent metric scope (the study's): the campaign's own scope rolls
  /// its totals up into it when the campaign finishes.
  telemetry::MetricScope* metrics_parent = nullptr;
};

/// Runs fault-injection campaigns. Stateless apart from configuration;
/// each call is deterministic in (app, config.seed) — independent of
/// worker count and of any shared context.
class CampaignRunner {
 public:
  /// Execute `config.trials` fault-injection tests. Throws
  /// std::runtime_error when the deployment has an empty sample space
  /// (no operations match the filters) or the golden run fails.
  static CampaignResult run(const apps::App& app,
                            const DeploymentConfig& config);

  /// Same, on shared infrastructure (see CampaignContext).
  static CampaignResult run(const apps::App& app,
                            const DeploymentConfig& config,
                            const CampaignContext& context);

  /// Classify one run output against the golden signature (exposed for
  /// tests and for custom drivers).
  static Outcome classify(const RunOutput& out,
                          const std::vector<double>& golden_signature,
                          double tolerance);
};

/// Relative deviation used by the checker: max over components of
/// |a - b| / max(|b|, floor).
double signature_deviation(const std::vector<double>& a,
                           const std::vector<double>& b,
                           double floor = 1e-30);

}  // namespace resilience::harness
