// Golden checkpoints + trial fast-forward (DESIGN.md §9).
//
// Every trial of a campaign is bit-identical to the golden run up to its
// injection op (the determinism DESIGN §5.2 already relies on), and most
// injected faults die locally within a few iterations (the bimodal CG/FT
// contamination histograms). This layer exploits both ends:
//
//   * golden capture — during the fault-free pre-pass, CaptureControl
//     records per boundary and per rank the absolute dynamic-op profile, a
//     cheap digest of the live state, and — at a budgeted subset of
//     boundaries — the full serialized rank state;
//   * fast-forward — a trial whose first injection lies beyond boundary k
//     restores rank state from the latest stored checkpoint <= k,
//     fast-forwards the FaultContext counters to the recorded values, and
//     resumes the loop there, skipping the fault-free prefix;
//   * early exit — post-injection, once every rank's digest equals the
//     golden digest at the same boundary and no rank holds live taint, the
//     tail would replay the golden run exactly; the trial terminates and
//     the runner synthesizes its observable outputs from the golden data.
//
// Default-on behind RESILIENCE_CHECKPOINT=0 / set_checkpoint_enabled(false)
// kill switches; the differential suite asserts campaign results are
// bit-identical either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "apps/trial_control.hpp"
#include "fsefi/plan.hpp"

namespace resilience::harness {

/// Whether trials use captured checkpoints (fast-forward + early exit;
/// default yes). RESILIENCE_CHECKPOINT=0 disables; set_checkpoint_enabled()
/// forces it per process (tests and benches). Golden captures themselves
/// are unconditional: their boundary metadata doubles as the
/// ResidentState scenario's sample space, which must not change shape
/// with this knob.
[[nodiscard]] bool checkpoint_enabled() noexcept;
void set_checkpoint_enabled(bool enabled) noexcept;

/// Maximum boundaries whose full rank state a golden capture stores
/// (RESILIENCE_CHECKPOINT_BUDGET, default 8, minimum 1). Digests and op
/// profiles are kept at every boundary regardless.
[[nodiscard]] std::size_t checkpoint_budget();

// ---- state digest / serialization -----------------------------------------

/// Order-sensitive 64-bit digest of the live-state views: the primary bit
/// patterns of Real elements plus raw doubles. Equality with the golden
/// digest at the same boundary — together with a clean taint scan, which
/// makes the shadows equal to the primaries on both sides — is the
/// reconvergence test for early exit.
[[nodiscard]] std::uint64_t digest_views(
    std::span<const apps::StateView> views) noexcept;

/// True when any Real element's primary and shadow bit patterns diverge
/// (live corruption still present in the state).
[[nodiscard]] bool views_tainted(
    std::span<const apps::StateView> views) noexcept;

/// Raw-byte snapshot of the views, in order (Real elements keep their
/// shadows; in a golden run shadow == primary).
[[nodiscard]] std::vector<std::byte> serialize_views(
    std::span<const apps::StateView> views);

/// Copy a snapshot back into the views. Throws std::runtime_error when
/// the byte counts do not line up (view shape changed since capture).
void restore_views(std::span<const std::byte> bytes,
                   std::span<const apps::StateView> views);

// ---- checkpoint store ------------------------------------------------------

/// Byte storage of one rank's checkpoint state: either owned (captured in
/// this process, or decoded from the JSON store format) or borrowed from
/// an mmap'd golden-v2 store file. A borrowed span's mapping is pinned by
/// the enclosing CheckpointData's `backing`, so the fast-forward restore
/// memcpys checkpoint bytes exactly once — mapping to live StateViews —
/// with no intermediate owned copy.
class StateBytes {
 public:
  StateBytes() = default;
  /*implicit*/ StateBytes(std::vector<std::byte> owned)
      : owned_(std::move(owned)) {}

  [[nodiscard]] static StateBytes borrowed(
      std::span<const std::byte> bytes) noexcept {
    StateBytes s;
    s.borrowed_ = bytes;
    return s;
  }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return borrowed_.data() != nullptr
               ? borrowed_
               : std::span<const std::byte>(owned_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes().size(); }
  [[nodiscard]] bool is_borrowed() const noexcept {
    return borrowed_.data() != nullptr;
  }

  friend bool operator==(const StateBytes& a, const StateBytes& b) noexcept {
    const auto x = a.bytes();
    const auto y = b.bytes();
    return x.size() == y.size() &&
           (x.empty() || std::memcmp(x.data(), y.data(), x.size()) == 0);
  }

 private:
  std::vector<std::byte> owned_;
  std::span<const std::byte> borrowed_{};
};

/// One recorded boundary of the golden run. `iter` is the iteration a
/// restored trial resumes at: the boundary at the end of iteration i is
/// record iter i + 1.
struct BoundaryRecord {
  int iter = 0;
  std::vector<fsefi::OpCountProfile> profiles;  ///< per rank, absolute
  std::vector<std::uint64_t> digests;           ///< per rank
  /// Per-rank full state snapshots; empty at boundaries outside the
  /// storage budget.
  std::vector<StateBytes> state;

  [[nodiscard]] bool stored() const noexcept { return !state.empty(); }
};

/// Everything a golden capture recorded for one (app, nranks) deployment,
/// cached inside GoldenRun (and therefore shared through GoldenCache).
struct CheckpointData {
  int nranks = 0;
  /// Boundary records in execution order, iters strictly increasing.
  std::vector<BoundaryRecord> boundaries;
  /// Per-rank count of fsefi::Real elements in the live-state views
  /// (Doubles views excluded) — the ResidentState scenario sample space,
  /// recorded once at begin() (the view shape is fixed for the run).
  std::vector<std::uint64_t> state_reals;
  /// Golden final outputs, for synthesizing an early-exited trial's
  /// observables: rank-0 signature, iteration count, per-rank profiles.
  std::vector<double> signature;
  int iterations = 0;
  std::vector<fsefi::OpCountProfile> final_profiles;
  /// Keeps the storage behind borrowed state spans alive (the golden-v2
  /// loader parks its MappedFile here). Owning records leave it null; it
  /// is never serialized.
  std::shared_ptr<const void> backing;

  /// The record whose resume iteration is `iter`, or nullptr.
  [[nodiscard]] const BoundaryRecord* find(int iter) const noexcept;
};

/// The latest stored boundary every armed rank provably reaches before
/// its first injection fires, or nullptr when no stored boundary
/// qualifies. A boundary is provably before EVERY planned fault when, per
/// armed rank: the golden filtered-op count at the boundary <= the first
/// register point's op index (the fault-free prefix covers it — points
/// are sorted, so this bounds all of them); the boundary strictly
/// precedes the earliest resident-state fault (restoring at or past it
/// would skip the flip); and the plan has no payload faults at all (the
/// delivered-Real stream position is not recorded per boundary, so no
/// restore can be proven safe).
[[nodiscard]] const BoundaryRecord* select_resume(
    const CheckpointData& data,
    const std::vector<fsefi::InjectionPlan>& plans) noexcept;

// ---- golden capture --------------------------------------------------------

/// Per-rank record of one boundary, written by CaptureControl on the rank
/// thread; the runner assembles the per-rank streams into CheckpointData.
struct RankBoundary {
  int iter = 0;
  fsefi::OpCountProfile profile;
  std::uint64_t digest = 0;
  std::vector<std::byte> state;  ///< empty when outside the storage budget
};

/// Capture sink shared by one golden run's rank threads; each rank writes
/// only its own slot.
struct CheckpointCapture {
  std::vector<std::vector<RankBoundary>> ranks;
  /// Per-rank Real-element counts of the state views (see
  /// CheckpointData::state_reals), recorded at begin().
  std::vector<std::uint64_t> state_reals;
  std::size_t budget = 8;
};

/// Merge the per-rank capture streams. Returns nullptr when no boundaries
/// were recorded (an app without boundary hooks); throws
/// std::runtime_error when ranks disagree on the boundary sequence.
std::unique_ptr<CheckpointData> assemble_checkpoints(CheckpointCapture&& cap);

// ---- trial controls --------------------------------------------------------

/// Golden-capture controller: records every boundary, storing full state
/// at boundaries whose resume iteration is a multiple of the current
/// stride. The stride doubles (and non-conforming snapshots are dropped)
/// whenever the stored set would exceed the budget — a deterministic rule
/// that depends only on the boundary sequence, so every rank keeps the
/// same subset.
class CaptureControl final : public apps::TrialControl {
 public:
  CaptureControl(std::vector<RankBoundary>& out, std::uint64_t& state_reals,
                 std::size_t budget)
      : out_(out),
        state_reals_(state_reals),
        budget_(budget == 0 ? 1 : budget) {}

  int begin(std::span<const apps::StateView> views) override;
  bool boundary(simmpi::Comm& comm, int iter,
                std::span<const apps::StateView> views) override;

 private:
  std::vector<RankBoundary>& out_;
  std::uint64_t& state_reals_;
  std::size_t budget_;
  int stride_ = 1;
  std::size_t stored_ = 0;
};

/// Trial controller: restores the selected checkpoint in begin(), applies
/// the rank's planned resident-state faults as their boundaries come up,
/// and runs the early-exit consensus at every boundary. The consensus is
/// a Min-allreduce of the per-rank quiet flag on the app's world comm —
/// abort-aware like every simmpi collective, and uniform across ranks
/// (each rank either reaches the boundary or the job is already
/// aborting). `data` may be null (checkpoints disabled while the plan
/// still carries state faults): the control then only injects — no
/// restore, never quiet — but still joins the consensus so the collective
/// stays uniform.
class FastForwardControl final : public apps::TrialControl {
 public:
  FastForwardControl(const CheckpointData* data, const BoundaryRecord* resume,
                     int rank, const fsefi::InjectionPlan& plan)
      : data_(data), resume_(resume), rank_(rank), plan_(plan) {}

  int begin(std::span<const apps::StateView> views) override;
  bool boundary(simmpi::Comm& comm, int iter,
                std::span<const apps::StateView> views) override;

  [[nodiscard]] bool restored() const noexcept { return resume_ != nullptr; }
  [[nodiscard]] bool early_exit() const noexcept { return exit_iter_ >= 0; }
  /// Resume iteration of the exit boundary (valid when early_exit()).
  [[nodiscard]] int exit_iter() const noexcept { return exit_iter_; }

 private:
  const CheckpointData* data_;
  const BoundaryRecord* resume_;
  int rank_;
  const fsefi::InjectionPlan& plan_;
  std::size_t next_state_ = 0;  ///< state faults applied so far
  int exit_iter_ = -1;
};

}  // namespace resilience::harness
