#include "shard/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "apps/app.hpp"
#include "harness/campaign_engine.hpp"
#include "harness/golden_store.hpp"
#include "shard/protocol.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::shard {

namespace {

void worker_loop(int fd) {
  // The coordinator detects a dead worker by EOF; a worker writing into a
  // dead coordinator should get EPIPE (an exception), not a process kill.
  ::signal(SIGPIPE, SIG_IGN);

  const auto init = read_frame(fd);
  if (!init || init->at("type").as_string() != "init") {
    throw std::runtime_error("shard worker: expected init frame");
  }
  const std::string app_name = init->at("app").as_string();
  const std::string size_class = init->at("size_class").as_string();
  const harness::DeploymentConfig config =
      deployment_from_json(init->at("config"));
  const std::string store_dir = init->at("store").as_string();
  const auto kill_after_units =
      static_cast<int>(init->at("kill_after_units").as_int());

  const std::unique_ptr<apps::App> app =
      apps::make_app(apps::parse_app_id(app_name), size_class);

  // Golden acquisition. The coordinator pre-fills the store before
  // spawning workers, so this is a disk load (golden_store.hits), not a
  // re-profile — the campaign's single HarnessGoldenProfiles count stays
  // with the coordinator. The fallback profile keeps a worker functional
  // if the store was cleaned underneath it; its extra counts surface in
  // the ready metrics rather than silently vanishing.
  telemetry::MetricScope init_scope;
  std::shared_ptr<const harness::GoldenRun> golden;
  {
    telemetry::ScopeGuard guard(&init_scope);
    harness::GoldenStore store(store_dir);
    golden = store.load_or_fill(*app, config.nranks, [&] {
      telemetry::count(telemetry::Counter::HarnessGoldenProfiles);
      return harness::profile_app(*app, config.nranks,
                                  config.deadlock_timeout);
    });
  }
  const harness::TrialSpace space(*app, config, *golden);

  {
    util::JsonObject ready;
    ready["type"] = util::Json("ready");
    ready["metrics"] = telemetry::metrics_to_json(init_scope.snapshot());
    write_frame(fd, util::Json(std::move(ready)));
  }

  int units_done = 0;
  while (true) {
    const auto frame = read_frame(fd);
    if (!frame) return;  // coordinator went away: nothing left to do
    const std::string type = frame->at("type").as_string();
    if (type == "shutdown") return;
    if (type != "unit") {
      throw std::runtime_error("shard worker: unexpected frame: " + type);
    }
    const auto unit_id = frame->at("id").as_int();
    const std::vector<harness::TrialRef> refs =
        refs_from_json(frame->at("refs"));

    telemetry::MetricScope unit_scope;
    std::vector<harness::TrialResult> results;
    results.reserve(refs.size());
    const auto start = std::chrono::steady_clock::now();
    for (const harness::TrialRef& ref : refs) {
      telemetry::ScopeGuard guard(&unit_scope);
      results.push_back(space.run(ref));
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    // Crash-recovery hook (tests and CI): die without reporting, as a
    // crashed worker would — the unit's counts and outcomes are lost with
    // the process and the coordinator re-runs the unit elsewhere.
    if (kill_after_units >= 0 && ++units_done > kill_after_units) {
      ::raise(SIGKILL);
    }

    util::JsonObject result;
    result["type"] = util::Json("result");
    result["id"] = util::Json(unit_id);
    result["outcomes"] = results_to_json(results);
    result["wall_seconds"] = util::Json(wall);
    result["metrics"] = telemetry::metrics_to_json(unit_scope.snapshot());
    write_frame(fd, util::Json(std::move(result)));
  }
}

}  // namespace

int maybe_worker_main(int argc, char** argv) {
  constexpr const char* kFlag = "--shard-worker=";
  int fd = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      fd = std::atoi(argv[i] + std::strlen(kFlag));
      break;
    }
  }
  if (fd < 0) return -1;
  try {
    worker_loop(fd);
    return 0;
  } catch (const std::exception& e) {
    // Best-effort error frame so the coordinator can log the cause; the
    // EOF that follows is what triggers its recovery path.
    try {
      util::JsonObject err;
      err["type"] = util::Json("error");
      err["message"] = util::Json(std::string(e.what()));
      write_frame(fd, util::Json(std::move(err)));
    } catch (...) {
    }
    std::fprintf(stderr, "shard worker: %s\n", e.what());
    return 1;
  }
}

}  // namespace resilience::shard
