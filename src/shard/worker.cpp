#include "shard/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <variant>

#include "apps/app.hpp"
#include "harness/campaign_engine.hpp"
#include "harness/golden_store.hpp"
#include "shard/protocol.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::shard {

namespace {

/// `wire` reports the format the worker will answer in: its own
/// env-resolved format up front, switched to the negotiated one once the
/// coordinator's handshake arrives — so even a handshake failure can be
/// reported in frames the coordinator parses.
void worker_loop(int fd, WireFormat* wire) {
  // The coordinator detects a dead worker by EOF; a worker writing into a
  // dead coordinator should get EPIPE (an exception), not a process kill.
  ::signal(SIGPIPE, SIG_IGN);

  // Handshake: the coordinator speaks first. Validate version and that
  // both sides resolved the same wire format, then echo our handshake so
  // the coordinator can validate us symmetrically.
  const WireFormat mine = *wire;
  {
    const auto payload = read_frame_bytes(fd);
    if (!payload) return;  // coordinator went away before the handshake
    const auto hs = parse_handshake(*payload);
    if (!hs) {
      throw std::runtime_error(
          "shard worker: expected a protocol handshake (mixed binaries?)");
    }
    if (hs->version != kShardProtocolVersion) {
      throw std::runtime_error(
          "shard worker: coordinator speaks protocol version " +
          std::to_string(hs->version) + ", this binary speaks " +
          std::to_string(kShardProtocolVersion));
    }
    // Answer in the coordinator's format from here on: an error frame in
    // our own format would just misparse on the other end.
    *wire = hs->format;
    if (hs->format != mine) {
      throw std::runtime_error(
          std::string("shard worker: wire format mismatch: coordinator "
                      "uses ") +
          wire_format_name(hs->format) + ", worker resolved " +
          wire_format_name(mine) +
          " (RESILIENCE_WIRE differs between coordinator and worker?)");
    }
  }
  write_handshake(fd, mine);

  auto init_msg = read_message(fd, mine);
  if (!init_msg || !std::holds_alternative<InitMsg>(*init_msg)) {
    throw std::runtime_error("shard worker: expected init frame");
  }
  const InitMsg& init = std::get<InitMsg>(*init_msg);
  const harness::DeploymentConfig& config = init.config;

  const std::unique_ptr<apps::App> app =
      apps::make_app(apps::parse_app_id(init.app), init.size_class);

  // Golden acquisition. The coordinator pre-fills the store before
  // spawning workers, so this is a disk load (golden_store.hits), not a
  // re-profile — the campaign's single HarnessGoldenProfiles count stays
  // with the coordinator. The fallback profile keeps a worker functional
  // if the store was cleaned underneath it; its extra counts surface in
  // the ready metrics rather than silently vanishing.
  telemetry::MetricScope init_scope;
  std::shared_ptr<const harness::GoldenRun> golden;
  {
    telemetry::ScopeGuard guard(&init_scope);
    harness::GoldenStore store(init.store);
    golden = store.load_or_fill(*app, config.nranks, [&] {
      telemetry::count(telemetry::Counter::HarnessGoldenProfiles);
      return harness::profile_app(*app, config.nranks,
                                  config.deadlock_timeout);
    });
  }
  const harness::TrialSpace space(*app, config, *golden);

  write_message(fd, mine, ReadyMsg{init_scope.snapshot()});

  int units_done = 0;
  while (true) {
    const auto msg = read_message(fd, mine);
    if (!msg) return;  // coordinator went away: nothing left to do
    if (std::holds_alternative<ShutdownMsg>(*msg)) return;
    const auto* unit = std::get_if<UnitMsg>(&*msg);
    if (unit == nullptr) {
      throw std::runtime_error("shard worker: unexpected frame");
    }

    telemetry::MetricScope unit_scope;
    ResultMsg result;
    result.id = unit->id;
    result.outcomes.reserve(unit->refs.size());
    const auto start = std::chrono::steady_clock::now();
    for (const harness::TrialRef& ref : unit->refs) {
      telemetry::ScopeGuard guard(&unit_scope);
      result.outcomes.push_back(space.run(ref));
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    // Crash-recovery hook (tests and CI): die without reporting, as a
    // crashed worker would — the unit's counts and outcomes are lost with
    // the process and the coordinator re-runs the unit elsewhere.
    if (init.kill_after_units >= 0 && ++units_done > init.kill_after_units) {
      ::raise(SIGKILL);
    }

    result.metrics = unit_scope.snapshot();
    write_message(fd, mine, result);
  }
}

}  // namespace

int maybe_worker_main(int argc, char** argv) {
  constexpr const char* kFlag = "--shard-worker=";
  int fd = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      fd = std::atoi(argv[i] + std::strlen(kFlag));
      break;
    }
  }
  if (fd < 0) return -1;
  WireFormat wire = wire_format_from_runtime();
  try {
    worker_loop(fd, &wire);
    return 0;
  } catch (const std::exception& e) {
    // Best-effort error frame so the coordinator can log the cause; the
    // EOF that follows is what triggers its recovery path.
    try {
      write_message(fd, wire, ErrorMsg{e.what()});
    } catch (...) {
    }
    std::fprintf(stderr, "shard worker: %s\n", e.what());
    return 1;
  }
}

}  // namespace resilience::shard
