#include "shard/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "apps/app.hpp"
#include "harness/campaign_engine.hpp"
#include "harness/golden_store.hpp"
#include "shard/protocol.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"
#include "util/options.hpp"

namespace resilience::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// One dispatchable slice of a campaign: contiguous refs, executed as a
/// unit on one worker. `results`/`wall` are filled when the unit's result
/// frame arrives; a unit lost to a worker crash is simply re-dispatched.
struct Unit {
  std::vector<harness::TrialRef> refs;
  std::optional<std::vector<harness::TrialResult>> results;
  double wall = 0.0;
};

/// Split `refs` into at most `max_units` contiguous units (ceil-div
/// chunking, mirroring the in-process executor's chunk shape). Unit order
/// preserves ref order, so concatenating unit results in unit-id order
/// reproduces the ref order the driver and merge loop expect.
std::vector<Unit> split_units(const std::vector<harness::TrialRef>& refs,
                              std::size_t max_units) {
  std::vector<Unit> units;
  const std::size_t n = refs.size();
  if (n == 0) return units;
  const std::size_t nunits = std::min(n, std::max<std::size_t>(max_units, 1));
  const std::size_t chunk = (n + nunits - 1) / nunits;
  for (std::size_t lo = 0; lo < n; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, n);
    Unit unit;
    unit.refs.assign(refs.begin() + static_cast<std::ptrdiff_t>(lo),
                     refs.begin() + static_cast<std::ptrdiff_t>(hi));
    units.push_back(std::move(unit));
  }
  return units;
}

/// Owns the worker fleet for one campaign: spawning over socketpairs,
/// dispatching units, folding worker metric snapshots into the campaign
/// scope, and replacing workers that die or wedge.
class Coordinator {
 public:
  Coordinator(const apps::App& app, const harness::DeploymentConfig& config,
              const ShardOptions& opts, int shards, std::string store_dir,
              telemetry::MetricScope& metrics)
      : app_(app),
        config_(config),
        opts_(opts),
        store_dir_(std::move(store_dir)),
        metrics_(metrics) {
    worker_path_ = opts.worker_path.empty() ? "/proc/self/exe"
                                            : opts.worker_path;
    workers_.resize(static_cast<std::size_t>(shards));
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      // The crash-recovery hook arms only the first incarnation of worker
      // 0; its replacement (and every other worker) runs to completion.
      spawn_worker(slot, slot == 0 ? opts.debug_kill_unit : -1);
    }
  }

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  ~Coordinator() {
    for (Worker& w : workers_) {
      if (w.fd < 0) continue;
      try {
        write_message(w.fd, opts_.wire, ShutdownMsg{});
      } catch (...) {
      }
      ::close(w.fd);
      w.fd = -1;
    }
    for (Worker& w : workers_) {
      if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
    }
  }

  /// Drive `units` to completion across the fleet; fills every unit's
  /// results and wall. Throws std::runtime_error when the whole fleet is
  /// lost with work outstanding.
  void run_units(std::vector<Unit>& units) {
    units_ = &units;
    pending_.clear();
    for (std::size_t id = 0; id < units.size(); ++id) pending_.push_back(id);
    remaining_ = units.size();

    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      if (workers_[slot].fd >= 0 && workers_[slot].ready &&
          workers_[slot].unit < 0) {
        dispatch(slot);
      }
    }

    while (remaining_ > 0) {
      std::vector<pollfd> fds;
      std::vector<std::size_t> slots;
      int timeout_ms = -1;
      const auto now = Clock::now();
      for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
        const Worker& w = workers_[slot];
        if (w.fd < 0) continue;
        fds.push_back({w.fd, POLLIN, 0});
        slots.push_back(slot);
        if (w.unit >= 0 || !w.ready) {
          const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
              w.deadline - now);
          const int ms = static_cast<int>(std::max<std::int64_t>(
              0, std::min<std::int64_t>(left.count(), 60'000)));
          timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
        }
      }
      if (fds.empty()) {
        throw std::runtime_error(
            "shard: all workers lost with " + std::to_string(remaining_) +
            " unit(s) outstanding" +
            (last_error_.empty() ? "" : " (last worker error: " + last_error_ +
                                            ")"));
      }

      const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("shard: poll failed: ") +
                                 std::strerror(errno));
      }

      // Drain readable sockets before enforcing deadlines: a frame that
      // already sits in the buffer proves the worker is alive, and
      // processing it may clear the deadline condition.
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        handle_readable(slots[i]);
      }
      const auto after = Clock::now();
      for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
        Worker& w = workers_[slot];
        if (w.fd < 0 || (w.unit < 0 && w.ready)) continue;
        if (w.deadline <= after) {
          ::kill(w.pid, SIGKILL);
          handle_worker_down(slot);
        }
      }
    }
    units_ = nullptr;
  }

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    bool handshaken = false;  ///< protocol handshake echoed and validated
    /// This incarnation already sent an ErrorMsg naming its failure; the
    /// transport noise that follows (ECONNRESET from its exit) must not
    /// overwrite that cause in last_error_.
    bool errored = false;
    bool ready = false;
    int unit = -1;  ///< in-flight unit id, -1 when idle
    Clock::time_point deadline{};
  };

  void spawn_worker(std::size_t slot, int kill_after_units) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error(std::string("shard: socketpair failed: ") +
                               std::strerror(errno));
    }
    // The coordinator end must not leak into workers forked later — a
    // worker holding a sibling's coordinator fd would mask that sibling's
    // EOF. The worker end stays inheritable across exec by design.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    const std::string fd_arg = "--shard-worker=" + std::to_string(sv[1]);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error(std::string("shard: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      // Child: only async-signal-safe calls until exec (the parent may be
      // multi-threaded — rank-team pools survive from earlier campaigns).
      ::execl(worker_path_.c_str(), worker_path_.c_str(), fd_arg.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(sv[1]);
    Worker& w = workers_[slot];
    w.pid = pid;
    w.fd = sv[0];
    w.handshaken = false;
    w.errored = false;
    w.ready = false;
    w.unit = -1;
    w.deadline = Clock::now() + opts_.unit_timeout;

    InitMsg init;
    init.app = app_.name();
    init.size_class = app_.size_class();
    init.config = config_;
    init.store = store_dir_;
    init.kill_after_units = kill_after_units;
    try {
      // Handshake first, init pipelined behind it: the worker validates
      // the handshake before it parses anything else.
      write_handshake(w.fd, opts_.wire);
      write_message(w.fd, opts_.wire, init);
    } catch (const std::exception&) {
      // A worker that died before reading init surfaces as EOF in the
      // event loop; the recovery path there replaces it.
    }
  }

  void dispatch(std::size_t slot) {
    if (pending_.empty()) return;
    Worker& w = workers_[slot];
    const std::size_t id = pending_.front();
    pending_.pop_front();
    try {
      write_message(w.fd, opts_.wire,
                    UnitMsg{static_cast<std::uint64_t>(id),
                            (*units_)[id].refs});
    } catch (const std::exception&) {
      pending_.push_front(id);
      handle_worker_down(slot);
      return;
    }
    w.unit = static_cast<int>(id);
    w.deadline = Clock::now() + opts_.unit_timeout;
    telemetry::ScopeGuard guard(&metrics_);
    telemetry::count(telemetry::Counter::ShardUnitsDispatched);
  }

  void handle_readable(std::size_t slot) {
    Worker& w = workers_[slot];
    if (w.fd < 0) return;
    std::optional<std::vector<std::byte>> payload;
    try {
      payload = read_frame_bytes(w.fd);
    } catch (const std::exception& e) {
      if (!w.errored) last_error_ = e.what();
      handle_worker_down(slot);
      return;
    }
    if (!payload) {
      handle_worker_down(slot);
      return;
    }
    if (!w.handshaken) {
      handle_handshake(slot, *payload);
      return;
    }
    Message msg;
    try {
      msg = decode_message(*payload, opts_.wire);
    } catch (const std::exception& e) {
      last_error_ = e.what();
      handle_worker_down(slot);
      return;
    }
    if (const auto* ready = std::get_if<ReadyMsg>(&msg)) {
      w.ready = true;
      metrics_.absorb(ready->metrics);
      dispatch(slot);
      return;
    }
    if (auto* result = std::get_if<ResultMsg>(&msg)) {
      const auto id = static_cast<std::size_t>(result->id);
      Unit& unit = (*units_)[id];
      unit.results = std::move(result->outcomes);
      unit.wall = result->wall_seconds;
      metrics_.absorb(result->metrics);
      w.unit = -1;
      remaining_ -= 1;
      dispatch(slot);
      return;
    }
    if (const auto* error = std::get_if<ErrorMsg>(&msg)) {
      last_error_ = error->message;
      w.errored = true;
      // The worker exits right after; its EOF drives the recovery path.
      return;
    }
    last_error_ = "shard: unexpected frame from worker";
    handle_worker_down(slot);
  }

  /// First frame from a fresh worker: its handshake echo — or, when the
  /// worker bailed out (wire-format mismatch, bad environment), its error
  /// frame, whose message is worth keeping over a generic parse failure.
  void handle_handshake(std::size_t slot, std::span<const std::byte> payload) {
    Worker& w = workers_[slot];
    if (const auto hs = parse_handshake(payload)) {
      if (hs->version != kShardProtocolVersion) {
        last_error_ = "shard: worker speaks protocol version " +
                      std::to_string(hs->version) + ", coordinator speaks " +
                      std::to_string(kShardProtocolVersion);
        handle_worker_down(slot);
        return;
      }
      if (hs->format != opts_.wire) {
        last_error_ =
            std::string("shard: wire format mismatch: worker uses ") +
            wire_format_name(hs->format) + ", coordinator uses " +
            wire_format_name(opts_.wire);
        handle_worker_down(slot);
        return;
      }
      w.handshaken = true;
      return;
    }
    try {
      const Message msg = decode_message(payload, opts_.wire);
      if (const auto* error = std::get_if<ErrorMsg>(&msg)) {
        last_error_ = error->message;
        w.errored = true;
        return;  // the worker's EOF drives the recovery path
      }
    } catch (const std::exception&) {
    }
    last_error_ = "shard: worker did not send a protocol handshake";
    handle_worker_down(slot);
  }

  /// Reap a dead (or presumed-wedged, already SIGKILLed) worker,
  /// re-enqueue its in-flight unit, and spawn a replacement while the
  /// restart budget lasts. The re-run unit produces identical outcomes —
  /// a crash costs wall time, never correctness.
  void handle_worker_down(std::size_t slot) {
    Worker& w = workers_[slot];
    if (w.fd < 0) return;
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
    ::close(w.fd);
    w.fd = -1;
    w.pid = -1;
    w.ready = false;
    if (w.unit >= 0) {
      pending_.push_front(static_cast<std::size_t>(w.unit));
      w.unit = -1;
    }
    if (remaining_ == 0) return;
    if (restarts_used_ >= opts_.max_worker_restarts) return;
    restarts_used_ += 1;
    {
      telemetry::ScopeGuard guard(&metrics_);
      telemetry::count(telemetry::Counter::ShardWorkerRestarts);
    }
    spawn_worker(slot, /*kill_after_units=*/-1);
  }

  const apps::App& app_;
  const harness::DeploymentConfig& config_;
  const ShardOptions& opts_;
  std::string store_dir_;
  std::string worker_path_;
  telemetry::MetricScope& metrics_;
  std::vector<Worker> workers_;
  std::vector<Unit>* units_ = nullptr;
  std::deque<std::size_t> pending_;
  std::size_t remaining_ = 0;
  int restarts_used_ = 0;
  std::string last_error_;
};

}  // namespace

ShardOptions ShardOptions::from_runtime() {
  const auto& opt = util::RuntimeOptions::global();
  ShardOptions s;
  s.shards = opt.shards;
  s.golden_store_dir = opt.golden_store;
  s.debug_kill_unit = opt.shard_kill_unit;
  s.wire = wire_format_from_runtime();
  return s;
}

harness::CampaignResult run_sharded_campaign(
    const apps::App& app, const harness::DeploymentConfig& cfg,
    const ShardOptions& opts, telemetry::MetricScope* metrics_parent) {
  if (cfg.errors_per_test < 1) {
    throw std::invalid_argument("errors_per_test must be >= 1");
  }
  // Dispatching a unit to a worker that just died must surface as EPIPE
  // (an exception the recovery path handles), not a process signal.
  ::signal(SIGPIPE, SIG_IGN);
  const int shards = std::max(1, opts.shards);

  telemetry::MetricScope metrics(metrics_parent);
  telemetry::TraceSpan span("shard", "campaign", "trials", cfg.trials);

  harness::CampaignResult result;
  result.config = cfg;

  std::string store_dir = opts.golden_store_dir;
  const bool temp_store = store_dir.empty();
  if (temp_store) {
    store_dir = (std::filesystem::temp_directory_path() /
                 ("resilience-shard-" + std::to_string(::getpid())))
                    .string();
  }

  {
    // Golden pre-pass: fill the store before spawning workers so the
    // campaign profiles exactly once (one HarnessGoldenProfiles here) and
    // every worker's acquisition is a disk hit.
    telemetry::ScopeGuard guard(&metrics);
    telemetry::count(telemetry::Counter::HarnessCampaigns);
    harness::GoldenStore store(store_dir);
    const auto golden = store.load_or_fill(app, cfg.nranks, [&] {
      telemetry::count(telemetry::Counter::HarnessGoldenProfiles);
      return harness::profile_app(app, cfg.nranks, cfg.deadlock_timeout);
    });
    result.golden = *golden;
  }

  // Built for the adaptive driver (strata, allocation weights) and to
  // validate the deployment exactly as the in-process runner does.
  harness::TrialSpace space(app, cfg, result.golden);

  result.contamination_hist.assign(static_cast<std::size_t>(cfg.nranks) + 1,
                                   0);
  result.by_contamination.assign(static_cast<std::size_t>(cfg.nranks) + 1,
                                 harness::FaultInjectionResult{});

  // Identical to CampaignRunner::run's merge: always applied in
  // deterministic ref order, which is what makes the sharded tallies
  // bit-identical to the in-process ones.
  auto merge_trial = [&](const harness::TrialResult& t) {
    result.overall.add(t.outcome);
    if (t.contaminated >= 0 &&
        t.contaminated < static_cast<int>(result.contamination_hist.size())) {
      result.contamination_hist[static_cast<std::size_t>(t.contaminated)] += 1;
      result.by_contamination[static_cast<std::size_t>(t.contaminated)].add(
          t.outcome);
    }
  };

  {
    Coordinator coord(app, cfg, opts, shards, store_dir, metrics);

    if (!cfg.adaptive.enabled) {
      std::vector<harness::TrialRef> refs;
      refs.reserve(cfg.trials);
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        refs.push_back({harness::kNoStratum, trial, trial});
      }
      // Several units per worker, like the in-process chunk shape: large
      // enough to amortise framing, small enough to balance the tail.
      auto units =
          split_units(refs, static_cast<std::size_t>(shards) * 4);
      coord.run_units(units);
      for (const Unit& unit : units) {
        result.wall_seconds += unit.wall;
        for (const harness::TrialResult& t : *unit.results) merge_trial(t);
      }
    } else {
      // Adaptive: the coordinator runs the allocation/stop policy; each
      // batch fans out as at most `shards` units with a barrier at the
      // batch boundary (the stop rule needs the whole batch folded).
      harness::AdaptiveDriver driver(cfg, space);
      std::vector<harness::TrialRef> refs;
      while (!(refs = driver.next_batch()).empty()) {
        auto units = split_units(refs, static_cast<std::size_t>(shards));
        coord.run_units(units);
        std::vector<harness::TrialResult> out;
        out.reserve(refs.size());
        for (const Unit& unit : units) {
          result.wall_seconds += unit.wall;
          for (const harness::TrialResult& t : *unit.results) {
            merge_trial(t);
            out.push_back(t);
          }
        }
        driver.fold(refs, out);
      }

      const harness::AdaptiveStats stats = driver.stats();
      result.adaptive = stats;
      {
        telemetry::ScopeGuard guard(&metrics);
        telemetry::count(
            telemetry::Counter::CampaignTrialsSaved,
            static_cast<std::uint64_t>(stats.trials_requested -
                                       stats.trials_executed));
        telemetry::count(telemetry::Counter::CampaignStrata,
                         static_cast<std::uint64_t>(stats.strata));
        telemetry::trace_instant(
            "harness",
            stats.stop_reason == harness::StopReason::Converged
                ? "adaptive_stop_converged"
                : "adaptive_stop_trial_cap",
            "executed", static_cast<std::uint64_t>(stats.trials_executed));
      }
    }
  }  // ~Coordinator: shutdown frames, close, reap

  result.metrics = metrics.snapshot();
  if (temp_store) {
    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
  }
  return result;
}

}  // namespace resilience::shard
