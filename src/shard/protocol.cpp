#include "shard/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace resilience::shard {

namespace {

/// Backstop against a corrupted length prefix (a stray write into the
/// pipe): no legitimate frame approaches this.
constexpr std::uint32_t kMaxFrame = 256u << 20;

void write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("shard: write failed: ") +
                               std::strerror(errno));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Read exactly `size` bytes. Returns false on EOF before the first byte;
/// throws on EOF mid-buffer.
bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("shard: read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("shard: peer closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, const util::Json& message) {
  const std::string payload = message.dump();
  if (payload.size() > kMaxFrame) {
    throw std::runtime_error("shard: frame too large");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(len & 0xff),
      static_cast<std::uint8_t>((len >> 8) & 0xff),
      static_cast<std::uint8_t>((len >> 16) & 0xff),
      static_cast<std::uint8_t>((len >> 24) & 0xff),
  };
  write_all(fd, prefix, sizeof(prefix));
  write_all(fd, payload.data(), payload.size());
}

std::optional<util::Json> read_frame(int fd) {
  std::uint8_t prefix[4];
  if (!read_all(fd, prefix, sizeof(prefix))) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            (static_cast<std::uint32_t>(prefix[1]) << 8) |
                            (static_cast<std::uint32_t>(prefix[2]) << 16) |
                            (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (len > kMaxFrame) {
    throw std::runtime_error("shard: oversized frame (corrupt prefix?)");
  }
  std::string payload(len, '\0');
  if (len > 0 && !read_all(fd, payload.data(), len)) {
    throw std::runtime_error("shard: peer closed mid-frame");
  }
  return util::Json::parse(payload);
}

util::Json deployment_to_json(const harness::DeploymentConfig& config) {
  util::JsonObject obj;
  obj["nranks"] = util::Json(config.nranks);
  obj["errors_per_test"] = util::Json(config.errors_per_test);
  obj["kinds"] = util::Json(static_cast<int>(config.kinds));
  obj["pattern"] = util::Json(static_cast<int>(config.pattern));
  obj["regions"] = util::Json(static_cast<int>(config.regions));
  obj["trials"] = util::Json(config.trials);
  obj["seed"] = util::Json(config.seed);
  obj["selection"] = util::Json(static_cast<int>(config.selection));
  obj["hang_budget_factor"] = util::Json(config.hang_budget_factor);
  obj["hang_budget_slack"] = util::Json(config.hang_budget_slack);
  obj["deadlock_timeout_ms"] =
      util::Json(static_cast<std::int64_t>(config.deadlock_timeout.count()));
  obj["max_workers"] = util::Json(config.max_workers);
  const harness::AdaptiveConfig& ad = config.adaptive;
  util::JsonObject adj;
  adj["enabled"] = util::Json(ad.enabled);
  adj["batch"] = util::Json(ad.batch);
  adj["min_trials"] = util::Json(ad.min_trials);
  adj["ci_half_width"] = util::Json(ad.ci_half_width);
  adj["ci_relative"] = util::Json(ad.ci_relative);
  adj["confidence_z"] = util::Json(ad.confidence_z);
  adj["rare_threshold"] = util::Json(ad.rare_threshold);
  adj["stratify"] = util::Json(ad.stratify);
  adj["deciles"] = util::Json(ad.deciles);
  obj["adaptive"] = util::Json(std::move(adj));
  return util::Json(std::move(obj));
}

harness::DeploymentConfig deployment_from_json(const util::Json& json) {
  harness::DeploymentConfig config;
  config.nranks = static_cast<int>(json.at("nranks").as_int());
  config.errors_per_test =
      static_cast<int>(json.at("errors_per_test").as_int());
  config.kinds = static_cast<fsefi::KindMask>(json.at("kinds").as_int());
  config.pattern =
      static_cast<fsefi::FaultPattern>(json.at("pattern").as_int());
  config.regions = static_cast<fsefi::RegionMask>(json.at("regions").as_int());
  config.trials = static_cast<std::size_t>(json.at("trials").as_int());
  config.seed = static_cast<std::uint64_t>(json.at("seed").as_int());
  config.selection =
      static_cast<harness::TargetSelection>(json.at("selection").as_int());
  config.hang_budget_factor = json.at("hang_budget_factor").as_double();
  config.hang_budget_slack =
      static_cast<std::uint64_t>(json.at("hang_budget_slack").as_int());
  config.deadlock_timeout =
      std::chrono::milliseconds(json.at("deadlock_timeout_ms").as_int());
  config.max_workers = static_cast<int>(json.at("max_workers").as_int());
  const auto& adj = json.at("adaptive");
  harness::AdaptiveConfig& ad = config.adaptive;
  ad.enabled = adj.at("enabled").as_bool();
  ad.batch = static_cast<std::size_t>(adj.at("batch").as_int());
  ad.min_trials = static_cast<std::size_t>(adj.at("min_trials").as_int());
  ad.ci_half_width = adj.at("ci_half_width").as_double();
  ad.ci_relative = adj.at("ci_relative").as_double();
  ad.confidence_z = adj.at("confidence_z").as_double();
  ad.rare_threshold = adj.at("rare_threshold").as_double();
  ad.stratify = adj.at("stratify").as_bool();
  ad.deciles = static_cast<int>(adj.at("deciles").as_int());
  return config;
}

util::Json refs_to_json(const std::vector<harness::TrialRef>& refs) {
  util::JsonArray arr;
  arr.reserve(refs.size());
  for (const harness::TrialRef& ref : refs) {
    util::JsonObject obj;
    obj["s"] = util::Json(ref.stratum);
    obj["i"] = util::Json(ref.index);
    obj["t"] = util::Json(ref.tag);
    arr.push_back(util::Json(std::move(obj)));
  }
  return util::Json(std::move(arr));
}

std::vector<harness::TrialRef> refs_from_json(const util::Json& json) {
  std::vector<harness::TrialRef> refs;
  for (const auto& item : json.as_array()) {
    harness::TrialRef ref;
    ref.stratum = static_cast<std::uint64_t>(item.at("s").as_int());
    ref.index = static_cast<std::uint64_t>(item.at("i").as_int());
    ref.tag = static_cast<std::uint64_t>(item.at("t").as_int());
    refs.push_back(ref);
  }
  return refs;
}

util::Json results_to_json(const std::vector<harness::TrialResult>& results) {
  util::JsonArray arr;
  arr.reserve(results.size());
  for (const harness::TrialResult& r : results) {
    util::JsonObject obj;
    obj["o"] = util::Json(static_cast<int>(r.outcome));
    obj["c"] = util::Json(r.contaminated);
    arr.push_back(util::Json(std::move(obj)));
  }
  return util::Json(std::move(arr));
}

std::vector<harness::TrialResult> results_from_json(const util::Json& json) {
  std::vector<harness::TrialResult> results;
  for (const auto& item : json.as_array()) {
    harness::TrialResult r;
    r.outcome = static_cast<harness::Outcome>(item.at("o").as_int());
    r.contaminated = static_cast<int>(item.at("c").as_int());
    results.push_back(r);
  }
  return results;
}

}  // namespace resilience::shard
