#include "shard/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "telemetry/sinks.hpp"
#include "util/binio.hpp"
#include "util/options.hpp"

namespace resilience::shard {

namespace {

constexpr char kHandshakeMagic[4] = {'R', 'S', 'W', 'H'};
constexpr std::size_t kHandshakeSize = 9;  // magic + u32 version + u8 format

/// Backstop against a corrupted length prefix (a stray write into the
/// pipe): no legitimate frame approaches the default. RESILIENCE_FRAME_CAP_MB
/// raises it for apps with outsized payloads.
std::uint64_t frame_cap_bytes() {
  return static_cast<std::uint64_t>(
             util::RuntimeOptions::global().frame_cap_mb)
         << 20;
}

void write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("shard: write failed: ") +
                               std::strerror(errno));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Read exactly `size` bytes. Returns false on EOF before the first byte;
/// throws on EOF mid-buffer.
bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("shard: read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("shard: peer closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

// ---- binary message payloads ----------------------------------------------

enum MsgTag : std::uint8_t {
  kTagInit = 1,
  kTagReady = 2,
  kTagUnit = 3,
  kTagResult = 4,
  kTagError = 5,
  kTagShutdown = 6,
};

void write_deployment(util::BinWriter& w,
                      const harness::DeploymentConfig& c) {
  w.i32(c.nranks);
  w.i32(c.errors_per_test);
  w.u8(static_cast<std::uint8_t>(c.scenario.domain));
  w.u8(static_cast<std::uint8_t>(c.scenario.pattern));
  w.u8(static_cast<std::uint8_t>(c.scenario.arrival));
  w.u32(static_cast<std::uint32_t>(c.scenario.kinds));
  w.u32(static_cast<std::uint32_t>(c.scenario.regions));
  w.f64(c.scenario.mtbf_factor);
  w.u64(c.trials);
  w.u64(c.seed);
  w.u32(static_cast<std::uint32_t>(c.selection));
  w.f64(c.hang_budget_factor);
  w.u64(c.hang_budget_slack);
  w.i64(c.deadlock_timeout.count());
  w.i32(c.max_workers);
  const harness::AdaptiveConfig& ad = c.adaptive;
  w.u8(ad.enabled ? 1 : 0);
  w.u64(ad.batch);
  w.u64(ad.min_trials);
  w.f64(ad.ci_half_width);
  w.f64(ad.ci_relative);
  w.f64(ad.confidence_z);
  w.f64(ad.rare_threshold);
  w.u8(ad.stratify ? 1 : 0);
  w.i32(ad.deciles);
}

harness::DeploymentConfig read_deployment(util::BinReader& r) {
  harness::DeploymentConfig c;
  c.nranks = r.i32();
  c.errors_per_test = r.i32();
  c.scenario.domain = static_cast<fsefi::FaultDomain>(r.u8());
  c.scenario.pattern = static_cast<fsefi::FaultPattern>(r.u8());
  c.scenario.arrival = static_cast<fsefi::ArrivalModel>(r.u8());
  c.scenario.kinds = static_cast<fsefi::KindMask>(r.u32());
  c.scenario.regions = static_cast<fsefi::RegionMask>(r.u32());
  c.scenario.mtbf_factor = r.f64();
  c.trials = r.u64();
  c.seed = r.u64();
  c.selection = static_cast<harness::TargetSelection>(r.u32());
  c.hang_budget_factor = r.f64();
  c.hang_budget_slack = r.u64();
  c.deadlock_timeout = std::chrono::milliseconds(r.i64());
  c.max_workers = r.i32();
  harness::AdaptiveConfig& ad = c.adaptive;
  ad.enabled = r.u8() != 0;
  ad.batch = r.u64();
  ad.min_trials = r.u64();
  ad.ci_half_width = r.f64();
  ad.ci_relative = r.f64();
  ad.confidence_z = r.f64();
  ad.rare_threshold = r.f64();
  ad.stratify = r.u8() != 0;
  ad.deciles = r.i32();
  return c;
}

/// Counter/histogram arrays as raw little-endian u64s, with the table
/// shapes up front: the handshake's version check already guarantees both
/// sides index the same telemetry tables, but a shape mismatch still
/// fails loudly instead of scrambling counters.
void write_metrics(util::BinWriter& w,
                   const telemetry::MetricsSnapshot& m) {
  w.u32(static_cast<std::uint32_t>(telemetry::kCounterCount));
  w.u64_array(m.counters);
  w.u32(static_cast<std::uint32_t>(telemetry::kHistogramCount));
  w.u32(static_cast<std::uint32_t>(telemetry::kHistogramBuckets));
  for (const telemetry::HistogramData& h : m.histograms) {
    w.u64_array(h.buckets);
  }
}

telemetry::MetricsSnapshot read_metrics(util::BinReader& r) {
  telemetry::MetricsSnapshot m;
  if (r.u32() != telemetry::kCounterCount) {
    throw util::BinError("shard: metrics counter table shape mismatch");
  }
  r.u64_array(m.counters);
  if (r.u32() != telemetry::kHistogramCount ||
      r.u32() != telemetry::kHistogramBuckets) {
    throw util::BinError("shard: metrics histogram table shape mismatch");
  }
  for (telemetry::HistogramData& h : m.histograms) {
    r.u64_array(h.buckets);
  }
  return m;
}

std::vector<std::byte> encode_binary(const Message& message) {
  util::BinWriter w;
  if (const auto* m = std::get_if<InitMsg>(&message)) {
    w.u8(kTagInit);
    w.str(m->app);
    w.str(m->size_class);
    w.str(m->store);
    w.i32(m->kill_after_units);
    write_deployment(w, m->config);
  } else if (const auto* m = std::get_if<ReadyMsg>(&message)) {
    w.u8(kTagReady);
    write_metrics(w, m->metrics);
  } else if (const auto* m = std::get_if<UnitMsg>(&message)) {
    w.u8(kTagUnit);
    w.u64(m->id);
    w.u64(m->refs.size());
    for (const harness::TrialRef& ref : m->refs) {
      w.u64(ref.stratum);
      w.u64(ref.index);
      w.u64(ref.tag);
    }
  } else if (const auto* m = std::get_if<ResultMsg>(&message)) {
    w.u8(kTagResult);
    w.u64(m->id);
    w.u64(m->outcomes.size());
    for (const harness::TrialResult& t : m->outcomes) {
      w.u8(static_cast<std::uint8_t>(t.outcome));
      w.i32(t.contaminated);
    }
    w.f64(m->wall_seconds);
    write_metrics(w, m->metrics);
  } else if (const auto* m = std::get_if<ErrorMsg>(&message)) {
    w.u8(kTagError);
    w.str(m->message);
  } else {
    w.u8(kTagShutdown);
  }
  return std::move(w).take();
}

Message decode_binary(std::span<const std::byte> payload) {
  util::BinReader r(payload);
  switch (r.u8()) {
    case kTagInit: {
      InitMsg m;
      m.app = r.str();
      m.size_class = r.str();
      m.store = r.str();
      m.kill_after_units = r.i32();
      m.config = read_deployment(r);
      return m;
    }
    case kTagReady: {
      ReadyMsg m;
      m.metrics = read_metrics(r);
      return m;
    }
    case kTagUnit: {
      UnitMsg m;
      m.id = r.u64();
      m.refs.resize(r.u64());
      for (harness::TrialRef& ref : m.refs) {
        ref.stratum = r.u64();
        ref.index = r.u64();
        ref.tag = r.u64();
      }
      return m;
    }
    case kTagResult: {
      ResultMsg m;
      m.id = r.u64();
      m.outcomes.resize(r.u64());
      for (harness::TrialResult& t : m.outcomes) {
        t.outcome = static_cast<harness::Outcome>(r.u8());
        t.contaminated = r.i32();
      }
      m.wall_seconds = r.f64();
      m.metrics = read_metrics(r);
      return m;
    }
    case kTagError:
      return ErrorMsg{r.str()};
    case kTagShutdown:
      return ShutdownMsg{};
    default:
      throw util::BinError("shard: unknown binary message tag");
  }
}

// ---- JSON message payloads (the pre-v2 frame shapes, kept verbatim) --------

util::Json encode_json(const Message& message) {
  util::JsonObject obj;
  if (const auto* m = std::get_if<InitMsg>(&message)) {
    obj["type"] = util::Json("init");
    obj["app"] = util::Json(m->app);
    obj["size_class"] = util::Json(m->size_class);
    obj["config"] = deployment_to_json(m->config);
    obj["store"] = util::Json(m->store);
    obj["kill_after_units"] = util::Json(m->kill_after_units);
  } else if (const auto* m = std::get_if<ReadyMsg>(&message)) {
    obj["type"] = util::Json("ready");
    obj["metrics"] = telemetry::metrics_to_json(m->metrics);
  } else if (const auto* m = std::get_if<UnitMsg>(&message)) {
    obj["type"] = util::Json("unit");
    obj["id"] = util::Json(static_cast<std::int64_t>(m->id));
    obj["refs"] = refs_to_json(m->refs);
  } else if (const auto* m = std::get_if<ResultMsg>(&message)) {
    obj["type"] = util::Json("result");
    obj["id"] = util::Json(static_cast<std::int64_t>(m->id));
    obj["outcomes"] = results_to_json(m->outcomes);
    obj["wall_seconds"] = util::Json(m->wall_seconds);
    obj["metrics"] = telemetry::metrics_to_json(m->metrics);
  } else if (const auto* m = std::get_if<ErrorMsg>(&message)) {
    obj["type"] = util::Json("error");
    obj["message"] = util::Json(m->message);
  } else {
    obj["type"] = util::Json("shutdown");
  }
  return util::Json(std::move(obj));
}

Message decode_json(const util::Json& json) {
  const std::string type = json.at("type").as_string();
  if (type == "init") {
    InitMsg m;
    m.app = json.at("app").as_string();
    m.size_class = json.at("size_class").as_string();
    m.config = deployment_from_json(json.at("config"));
    m.store = json.at("store").as_string();
    m.kill_after_units =
        static_cast<int>(json.at("kill_after_units").as_int());
    return m;
  }
  if (type == "ready") {
    return ReadyMsg{telemetry::metrics_from_json(json.at("metrics"))};
  }
  if (type == "unit") {
    UnitMsg m;
    m.id = static_cast<std::uint64_t>(json.at("id").as_int());
    m.refs = refs_from_json(json.at("refs"));
    return m;
  }
  if (type == "result") {
    ResultMsg m;
    m.id = static_cast<std::uint64_t>(json.at("id").as_int());
    m.outcomes = results_from_json(json.at("outcomes"));
    m.wall_seconds = json.at("wall_seconds").as_double();
    m.metrics = telemetry::metrics_from_json(json.at("metrics"));
    return m;
  }
  if (type == "error") return ErrorMsg{json.at("message").as_string()};
  if (type == "shutdown") return ShutdownMsg{};
  throw std::runtime_error("shard: unknown message type: " + type);
}

const char* message_kind(const Message& message) {
  if (std::holds_alternative<InitMsg>(message)) return "init";
  if (std::holds_alternative<ReadyMsg>(message)) return "ready";
  if (std::holds_alternative<UnitMsg>(message)) return "unit";
  if (std::holds_alternative<ResultMsg>(message)) return "result";
  if (std::holds_alternative<ErrorMsg>(message)) return "error";
  return "shutdown";
}

/// Frame-kind + unit-id context for the oversize error — the bug report
/// writes itself instead of a bare "frame too large".
std::string message_context(const Message& message) {
  std::string context = std::string("\"") + message_kind(message) + "\" frame";
  if (const auto* m = std::get_if<UnitMsg>(&message)) {
    context += " for unit " + std::to_string(m->id);
  } else if (const auto* m = std::get_if<ResultMsg>(&message)) {
    context += " for unit " + std::to_string(m->id);
  }
  return context;
}

}  // namespace

const char* wire_format_name(WireFormat format) noexcept {
  return format == WireFormat::Binary ? "binary" : "json";
}

WireFormat wire_format_from_runtime() {
  if (!util::binio_host_supported()) return WireFormat::Json;
  return util::RuntimeOptions::global().wire_binary ? WireFormat::Binary
                                                    : WireFormat::Json;
}

void write_frame_bytes(int fd, std::span<const std::byte> payload,
                       const std::string& context) {
  const std::uint64_t cap = frame_cap_bytes();
  if (payload.size() > cap) {
    throw std::runtime_error(
        "shard: " + context + " is " + std::to_string(payload.size()) +
        " bytes, over the " + std::to_string(cap) +
        "-byte frame cap (RESILIENCE_FRAME_CAP_MB)");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(len & 0xff),
      static_cast<std::uint8_t>((len >> 8) & 0xff),
      static_cast<std::uint8_t>((len >> 16) & 0xff),
      static_cast<std::uint8_t>((len >> 24) & 0xff),
  };
  write_all(fd, prefix, sizeof(prefix));
  write_all(fd, payload.data(), payload.size());
}

std::optional<std::vector<std::byte>> read_frame_bytes(int fd) {
  std::uint8_t prefix[4];
  if (!read_all(fd, prefix, sizeof(prefix))) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            (static_cast<std::uint32_t>(prefix[1]) << 8) |
                            (static_cast<std::uint32_t>(prefix[2]) << 16) |
                            (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (len > frame_cap_bytes()) {
    throw std::runtime_error(
        "shard: incoming frame of " + std::to_string(len) +
        " bytes exceeds the " + std::to_string(frame_cap_bytes()) +
        "-byte frame cap (corrupt prefix? raise RESILIENCE_FRAME_CAP_MB)");
  }
  std::vector<std::byte> payload(len);
  if (len > 0 && !read_all(fd, payload.data(), len)) {
    throw std::runtime_error("shard: peer closed mid-frame");
  }
  return payload;
}

void write_frame(int fd, const util::Json& message) {
  const std::string payload = message.dump();
  write_frame_bytes(
      fd,
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(payload.data()), payload.size()),
      "json frame");
}

std::optional<util::Json> read_frame(int fd) {
  auto payload = read_frame_bytes(fd);
  if (!payload) return std::nullopt;
  return util::Json::parse(
      std::string(reinterpret_cast<const char*>(payload->data()),
                  payload->size()));
}

std::vector<std::byte> encode_handshake(WireFormat format) {
  util::BinWriter w;
  w.bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kHandshakeMagic),
      sizeof(kHandshakeMagic)));
  w.u32(kShardProtocolVersion);
  w.u8(static_cast<std::uint8_t>(format));
  return std::move(w).take();
}

std::optional<Handshake> parse_handshake(std::span<const std::byte> payload) {
  if (payload.size() != kHandshakeSize ||
      std::memcmp(payload.data(), kHandshakeMagic, sizeof(kHandshakeMagic)) !=
          0) {
    return std::nullopt;
  }
  util::BinReader r(payload.subspan(sizeof(kHandshakeMagic)));
  Handshake hs;
  hs.version = r.u32();
  const std::uint8_t format = r.u8();
  if (format > static_cast<std::uint8_t>(WireFormat::Binary)) {
    return std::nullopt;
  }
  hs.format = static_cast<WireFormat>(format);
  return hs;
}

void write_handshake(int fd, WireFormat format) {
  write_frame_bytes(fd, encode_handshake(format), "handshake frame");
}

Handshake read_handshake(int fd, WireFormat expected) {
  const auto payload = read_frame_bytes(fd);
  if (!payload) {
    throw std::runtime_error("shard: peer closed before handshake");
  }
  const auto hs = parse_handshake(*payload);
  if (!hs) {
    throw std::runtime_error(
        "shard: peer did not send a protocol handshake (mixed binaries?)");
  }
  if (hs->version != kShardProtocolVersion) {
    throw std::runtime_error(
        "shard: peer speaks protocol version " + std::to_string(hs->version) +
        ", this binary speaks " + std::to_string(kShardProtocolVersion));
  }
  if (hs->format != expected) {
    throw std::runtime_error(
        std::string("shard: wire format mismatch: peer uses ") +
        wire_format_name(hs->format) + ", this side uses " +
        wire_format_name(expected) +
        " (RESILIENCE_WIRE differs between coordinator and worker?)");
  }
  return *hs;
}

std::vector<std::byte> encode_message(const Message& message,
                                      WireFormat format) {
  if (format == WireFormat::Binary) return encode_binary(message);
  const std::string text = encode_json(message).dump();
  const auto* p = reinterpret_cast<const std::byte*>(text.data());
  return {p, p + text.size()};
}

Message decode_message(std::span<const std::byte> payload,
                       WireFormat format) {
  if (format == WireFormat::Binary) return decode_binary(payload);
  return decode_json(util::Json::parse(std::string(
      reinterpret_cast<const char*>(payload.data()), payload.size())));
}

void write_message(int fd, WireFormat format, const Message& message) {
  write_frame_bytes(fd, encode_message(message, format),
                    message_context(message));
}

std::optional<Message> read_message(int fd, WireFormat format) {
  auto payload = read_frame_bytes(fd);
  if (!payload) return std::nullopt;
  return decode_message(*payload, format);
}

util::Json deployment_to_json(const harness::DeploymentConfig& config) {
  util::JsonObject obj;
  obj["nranks"] = util::Json(config.nranks);
  obj["errors_per_test"] = util::Json(config.errors_per_test);
  // The wire carries the whole scenario unconditionally: the handshake's
  // version gate already rules out pre-scenario peers, so no legacy shape
  // to preserve here.
  util::JsonObject sc;
  sc["domain"] = util::Json(static_cast<int>(config.scenario.domain));
  sc["pattern"] = util::Json(static_cast<int>(config.scenario.pattern));
  sc["arrival"] = util::Json(static_cast<int>(config.scenario.arrival));
  sc["kinds"] = util::Json(static_cast<int>(config.scenario.kinds));
  sc["regions"] = util::Json(static_cast<int>(config.scenario.regions));
  sc["mtbf_factor"] = util::Json(config.scenario.mtbf_factor);
  obj["scenario"] = util::Json(std::move(sc));
  obj["trials"] = util::Json(config.trials);
  obj["seed"] = util::Json(config.seed);
  obj["selection"] = util::Json(static_cast<int>(config.selection));
  obj["hang_budget_factor"] = util::Json(config.hang_budget_factor);
  obj["hang_budget_slack"] = util::Json(config.hang_budget_slack);
  obj["deadlock_timeout_ms"] =
      util::Json(static_cast<std::int64_t>(config.deadlock_timeout.count()));
  obj["max_workers"] = util::Json(config.max_workers);
  const harness::AdaptiveConfig& ad = config.adaptive;
  util::JsonObject adj;
  adj["enabled"] = util::Json(ad.enabled);
  adj["batch"] = util::Json(ad.batch);
  adj["min_trials"] = util::Json(ad.min_trials);
  adj["ci_half_width"] = util::Json(ad.ci_half_width);
  adj["ci_relative"] = util::Json(ad.ci_relative);
  adj["confidence_z"] = util::Json(ad.confidence_z);
  adj["rare_threshold"] = util::Json(ad.rare_threshold);
  adj["stratify"] = util::Json(ad.stratify);
  adj["deciles"] = util::Json(ad.deciles);
  obj["adaptive"] = util::Json(std::move(adj));
  return util::Json(std::move(obj));
}

harness::DeploymentConfig deployment_from_json(const util::Json& json) {
  harness::DeploymentConfig config;
  config.nranks = static_cast<int>(json.at("nranks").as_int());
  config.errors_per_test =
      static_cast<int>(json.at("errors_per_test").as_int());
  const auto& sc = json.at("scenario");
  config.scenario.domain =
      static_cast<fsefi::FaultDomain>(sc.at("domain").as_int());
  config.scenario.pattern =
      static_cast<fsefi::FaultPattern>(sc.at("pattern").as_int());
  config.scenario.arrival =
      static_cast<fsefi::ArrivalModel>(sc.at("arrival").as_int());
  config.scenario.kinds =
      static_cast<fsefi::KindMask>(sc.at("kinds").as_int());
  config.scenario.regions =
      static_cast<fsefi::RegionMask>(sc.at("regions").as_int());
  config.scenario.mtbf_factor = sc.at("mtbf_factor").as_double();
  config.trials = static_cast<std::size_t>(json.at("trials").as_int());
  config.seed = static_cast<std::uint64_t>(json.at("seed").as_int());
  config.selection =
      static_cast<harness::TargetSelection>(json.at("selection").as_int());
  config.hang_budget_factor = json.at("hang_budget_factor").as_double();
  config.hang_budget_slack =
      static_cast<std::uint64_t>(json.at("hang_budget_slack").as_int());
  config.deadlock_timeout =
      std::chrono::milliseconds(json.at("deadlock_timeout_ms").as_int());
  config.max_workers = static_cast<int>(json.at("max_workers").as_int());
  const auto& adj = json.at("adaptive");
  harness::AdaptiveConfig& ad = config.adaptive;
  ad.enabled = adj.at("enabled").as_bool();
  ad.batch = static_cast<std::size_t>(adj.at("batch").as_int());
  ad.min_trials = static_cast<std::size_t>(adj.at("min_trials").as_int());
  ad.ci_half_width = adj.at("ci_half_width").as_double();
  ad.ci_relative = adj.at("ci_relative").as_double();
  ad.confidence_z = adj.at("confidence_z").as_double();
  ad.rare_threshold = adj.at("rare_threshold").as_double();
  ad.stratify = adj.at("stratify").as_bool();
  ad.deciles = static_cast<int>(adj.at("deciles").as_int());
  return config;
}

util::Json refs_to_json(const std::vector<harness::TrialRef>& refs) {
  util::JsonArray arr;
  arr.reserve(refs.size());
  for (const harness::TrialRef& ref : refs) {
    util::JsonObject obj;
    obj["s"] = util::Json(ref.stratum);
    obj["i"] = util::Json(ref.index);
    obj["t"] = util::Json(ref.tag);
    arr.push_back(util::Json(std::move(obj)));
  }
  return util::Json(std::move(arr));
}

std::vector<harness::TrialRef> refs_from_json(const util::Json& json) {
  std::vector<harness::TrialRef> refs;
  for (const auto& item : json.as_array()) {
    harness::TrialRef ref;
    ref.stratum = static_cast<std::uint64_t>(item.at("s").as_int());
    ref.index = static_cast<std::uint64_t>(item.at("i").as_int());
    ref.tag = static_cast<std::uint64_t>(item.at("t").as_int());
    refs.push_back(ref);
  }
  return refs;
}

util::Json results_to_json(const std::vector<harness::TrialResult>& results) {
  util::JsonArray arr;
  arr.reserve(results.size());
  for (const harness::TrialResult& r : results) {
    util::JsonObject obj;
    obj["o"] = util::Json(static_cast<int>(r.outcome));
    obj["c"] = util::Json(r.contaminated);
    arr.push_back(util::Json(std::move(obj)));
  }
  return util::Json(std::move(arr));
}

std::vector<harness::TrialResult> results_from_json(const util::Json& json) {
  std::vector<harness::TrialResult> results;
  for (const auto& item : json.as_array()) {
    harness::TrialResult r;
    r.outcome = static_cast<harness::Outcome>(item.at("o").as_int());
    r.contaminated = static_cast<int>(item.at("c").as_int());
    results.push_back(r);
  }
  return results;
}

}  // namespace resilience::shard
