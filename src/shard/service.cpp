#include "shard/service.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "apps/app.hpp"
#include "harness/serialize.hpp"
#include "shard/coordinator.hpp"
#include "shard/protocol.hpp"

namespace resilience::shard {

namespace {

util::Json error_reply(const std::string& message) {
  util::JsonObject obj;
  obj["type"] = util::Json("error");
  obj["message"] = util::Json(message);
  return util::Json(std::move(obj));
}

int bind_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a previous server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: bind/listen on " + path + " failed: " +
                             err);
  }
  return fd;
}

}  // namespace

util::Json StudyService::run_campaign(const util::Json& request) {
  const std::string app_name = request.at("app").as_string();
  const util::JsonObject& req = request.as_object();
  const std::string size_class =
      req.count("size_class") ? request.at("size_class").as_string() : "";
  const harness::DeploymentConfig config =
      deployment_from_json(request.at("config"));
  ShardOptions opts = ShardOptions::from_runtime();
  const int shards = req.count("shards")
                         ? static_cast<int>(request.at("shards").as_int())
                         : opts.shards;

  // Canonical cache key: re-serialize through our own encoders so two
  // requests meaning the same campaign key identically regardless of how
  // the client ordered or spelled its JSON.
  std::string key;
  {
    util::JsonObject canon;
    canon["app"] = util::Json(app_name);
    canon["size_class"] = util::Json(size_class);
    canon["config"] = deployment_to_json(config);
    canon["shards"] = util::Json(shards);
    key = util::Json(std::move(canon)).dump();
  }

  bool cached = true;
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    cached = false;
    const std::unique_ptr<apps::App> app =
        apps::make_app(apps::parse_app_id(app_name), size_class);
    harness::CampaignResult result;
    if (shards > 0) {
      opts.shards = shards;
      result = run_sharded_campaign(*app, config, opts);
    } else {
      result = harness::CampaignRunner::run(*app, config);
    }
    it = cache_.emplace(key, harness::to_json(result).dump()).first;
  } else {
    cache_hits_ += 1;
  }

  util::JsonObject reply;
  reply["type"] = util::Json("result");
  reply["cached"] = util::Json(cached);
  reply["campaign"] = util::Json::parse(it->second);
  return util::Json(std::move(reply));
}

util::Json StudyService::handle(const util::Json& request) {
  requests_ += 1;
  try {
    const std::string type = request.at("type").as_string();
    if (type == "ping") {
      util::JsonObject obj;
      obj["type"] = util::Json("pong");
      return util::Json(std::move(obj));
    }
    if (type == "campaign") return run_campaign(request);
    if (type == "stats") {
      util::JsonObject obj;
      obj["type"] = util::Json("stats");
      obj["requests"] = util::Json(static_cast<std::int64_t>(requests_));
      obj["cache_hits"] = util::Json(static_cast<std::int64_t>(cache_hits_));
      return util::Json(std::move(obj));
    }
    if (type == "shutdown") {
      shutdown_ = true;
      util::JsonObject obj;
      obj["type"] = util::Json("ok");
      return util::Json(std::move(obj));
    }
    return error_reply("unknown request type: " + type);
  } catch (const std::exception& e) {
    return error_reply(e.what());
  }
}

int run_server(const std::string& socket_path) {
  ::signal(SIGPIPE, SIG_IGN);
  const int listen_fd = bind_unix(socket_path);
  StudyService service;
  std::fprintf(stderr, "serve: listening on %s\n", socket_path.c_str());
  while (!service.shutdown_requested()) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "serve: accept failed: %s\n", std::strerror(errno));
      break;
    }
    try {
      // One client at a time, frames until it hangs up: campaigns are
      // CPU-bound, so serial service keeps the cache simple and the
      // machine uncontended.
      while (true) {
        const auto request = read_frame(client);
        if (!request) break;
        write_frame(client, service.handle(*request));
        if (service.shutdown_requested()) break;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: client error: %s\n", e.what());
    }
    ::close(client);
  }
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  return 0;
}

util::Json send_request(const std::string& socket_path,
                        const util::Json& request) {
  ::signal(SIGPIPE, SIG_IGN);
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("request: socket path too long: " + socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("request: socket failed: ") +
                             std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("request: connect to " + socket_path +
                             " failed: " + err);
  }
  std::optional<util::Json> reply;
  try {
    write_frame(fd, request);
    reply = read_frame(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (!reply) {
    throw std::runtime_error("request: server closed without a reply");
  }
  return std::move(*reply);
}

}  // namespace resilience::shard
