// Shard worker process entry point (DESIGN.md §13).
//
// A worker is the same binary as the coordinator, re-exec'd with
// `--shard-worker=<fd>` where <fd> is the worker's end of the
// coordinator's socketpair. It receives one init frame (app key, full
// deployment config, golden-store directory), loads the golden run from
// the store (the coordinator pre-fills it, so this is a hit, not a
// re-profile), builds the shared TrialSpace, and then executes work units
// — lists of TrialRefs — streaming each unit's outcomes and metric
// snapshot back. Trial identity is placement-independent, so whichever
// worker runs a ref produces the byte-identical outcome.
#pragma once

namespace resilience::shard {

/// Entry hook for main(): scans argv for `--shard-worker=<fd>` and, when
/// present, runs the worker protocol loop to completion and returns the
/// process exit code (0 on clean shutdown, 1 on error). Returns -1 when
/// the flag is absent — the caller proceeds as a normal CLI/test process.
int maybe_worker_main(int argc, char** argv);

}  // namespace resilience::shard
