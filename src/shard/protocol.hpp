// Shard wire protocol (DESIGN.md §13, binary frames §15).
//
// Coordinator and workers exchange length-prefixed frames over a
// Unix-domain socketpair: a 4-byte little-endian payload length followed
// by the payload. Two payload encodings exist, selected by the
// RESILIENCE_WIRE knob: "binary" (default) packs messages with the binio
// writer, "json" is the UTF-8 JSON fallback. The first frame in each
// direction is a fixed-layout handshake (magic, protocol version, wire
// format) that both sides validate, so a coordinator and worker that
// disagree — mixed binaries, or RESILIENCE_WIRE drift between spawn and
// exec — reject each other with a clear error instead of misparsing.
//
// Message vocabulary:
//   coordinator -> worker
//     InitMsg     {app, size_class, config, store, kill_after_units}
//     UnitMsg     {id, refs}
//     ShutdownMsg {}
//   worker -> coordinator
//     ReadyMsg    {metrics}            — after init + golden acquisition
//     ResultMsg   {id, outcomes, wall_seconds, metrics}
//     ErrorMsg    {message}            — before exiting on a failure
//
// Frames are capped at RESILIENCE_FRAME_CAP_MB (backstop against a
// corrupted length prefix); oversize errors name the frame kind, unit id,
// and byte count on the write side, and the configured cap on both.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "harness/campaign_engine.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace resilience::shard {

/// Payload encoding of the shard frames.
enum class WireFormat : std::uint8_t { Json = 0, Binary = 1 };

[[nodiscard]] const char* wire_format_name(WireFormat format) noexcept;

/// Resolve RESILIENCE_WIRE (binary unless the host lacks binio support).
[[nodiscard]] WireFormat wire_format_from_runtime();

/// Bumped on any incompatible change to the handshake or either payload
/// encoding; peers with different versions refuse to talk.
/// v3: the deployment config carries the full FaultScenario descriptor
/// (domain/pattern/arrival/kinds/regions/mtbf) instead of the legacy
/// kinds/pattern/regions triple.
inline constexpr std::uint32_t kShardProtocolVersion = 3;

// ---- raw frames ------------------------------------------------------------

/// Write one frame; throws std::runtime_error on a short write, a closed
/// peer (EPIPE arrives as an error, not a signal — callers ignore
/// SIGPIPE), or a payload over the frame cap (`context` names the frame
/// in the error message).
void write_frame_bytes(int fd, std::span<const std::byte> payload,
                       const std::string& context);

/// Read one frame's payload. Returns nullopt on clean EOF at a frame
/// boundary; throws std::runtime_error on a truncated frame (peer died
/// mid-write) or a length prefix over the frame cap.
[[nodiscard]] std::optional<std::vector<std::byte>> read_frame_bytes(int fd);

/// JSON-frame convenience used by the study service (whose request API
/// stays JSON regardless of RESILIENCE_WIRE).
void write_frame(int fd, const util::Json& message);
[[nodiscard]] std::optional<util::Json> read_frame(int fd);

// ---- handshake -------------------------------------------------------------

struct Handshake {
  std::uint32_t version = kShardProtocolVersion;
  WireFormat format = WireFormat::Binary;
};

[[nodiscard]] std::vector<std::byte> encode_handshake(WireFormat format);
/// Parse a payload as a handshake; nullopt when it is not one (wrong
/// magic or size — e.g. an error frame from a bailing worker).
[[nodiscard]] std::optional<Handshake> parse_handshake(
    std::span<const std::byte> payload);

/// Send this side's handshake (always the first frame written).
void write_handshake(int fd, WireFormat format);

/// Read the peer's first frame and require a handshake matching
/// `expected` in version and format; throws std::runtime_error naming
/// the mismatch (including a peer that is not speaking the protocol at
/// all, or a clean EOF).
[[nodiscard]] Handshake read_handshake(int fd, WireFormat expected);

// ---- messages --------------------------------------------------------------

struct InitMsg {
  std::string app;
  std::string size_class;
  harness::DeploymentConfig config;
  std::string store;
  int kill_after_units = -1;
};

struct ReadyMsg {
  telemetry::MetricsSnapshot metrics;
};

struct UnitMsg {
  std::uint64_t id = 0;
  std::vector<harness::TrialRef> refs;
};

struct ResultMsg {
  std::uint64_t id = 0;
  std::vector<harness::TrialResult> outcomes;
  double wall_seconds = 0.0;
  telemetry::MetricsSnapshot metrics;
};

struct ErrorMsg {
  std::string message;
};

struct ShutdownMsg {};

using Message =
    std::variant<InitMsg, ReadyMsg, UnitMsg, ResultMsg, ErrorMsg, ShutdownMsg>;

/// Encode/decode one message payload (no framing) — also the substrate of
/// the serialization bench legs. decode_message throws std::runtime_error
/// / util::BinError / util::JsonError on malformed payloads.
[[nodiscard]] std::vector<std::byte> encode_message(const Message& message,
                                                    WireFormat format);
[[nodiscard]] Message decode_message(std::span<const std::byte> payload,
                                     WireFormat format);

void write_message(int fd, WireFormat format, const Message& message);
/// nullopt on clean EOF at a frame boundary.
[[nodiscard]] std::optional<Message> read_message(int fd, WireFormat format);

// ---- JSON codecs (wire fallback + study service) ---------------------------

/// Full-fidelity deployment config for the wire — unlike the campaign
/// file schema this carries every execution-relevant field (hang budget,
/// deadlock timeout, adaptive engine parameters), so a worker rebuilds
/// the exact TrialSpace the coordinator planned against.
util::Json deployment_to_json(const harness::DeploymentConfig& config);
harness::DeploymentConfig deployment_from_json(const util::Json& json);

util::Json refs_to_json(const std::vector<harness::TrialRef>& refs);
std::vector<harness::TrialRef> refs_from_json(const util::Json& json);

util::Json results_to_json(const std::vector<harness::TrialResult>& results);
std::vector<harness::TrialResult> results_from_json(const util::Json& json);

}  // namespace resilience::shard
