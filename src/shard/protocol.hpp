// Shard wire protocol (DESIGN.md §13).
//
// Coordinator and workers exchange length-prefixed JSON frames over a
// Unix-domain socketpair: a 4-byte little-endian payload length followed
// by that many bytes of UTF-8 JSON. Both ends are the same binary, so the
// protocol carries no compatibility machinery — a malformed frame is a
// bug (or a killed peer) and surfaces as an exception / EOF.
//
// Message vocabulary (the "type" field):
//   coordinator -> worker
//     init     {app, size_class, config, store, kill_after_units}
//     unit     {id, refs: [{s, i, t}, ...]}
//     shutdown {}
//   worker -> coordinator
//     ready    {metrics}                 — after init + golden acquisition
//     result   {id, outcomes: [{o, c}, ...], wall_seconds, metrics}
//     error    {message}                 — before exiting on a failure
#pragma once

#include <optional>
#include <vector>

#include "harness/campaign_engine.hpp"
#include "util/json.hpp"

namespace resilience::shard {

/// Write one frame; throws std::runtime_error on a short write or closed
/// peer (EPIPE arrives as an error, not a signal — callers ignore
/// SIGPIPE).
void write_frame(int fd, const util::Json& message);

/// Read one frame. Returns nullopt on clean EOF at a frame boundary;
/// throws std::runtime_error on a truncated frame (peer died mid-write)
/// or an over-long length prefix, and util::JsonError on malformed JSON.
std::optional<util::Json> read_frame(int fd);

/// Full-fidelity deployment config for the wire — unlike the campaign
/// file schema this carries every execution-relevant field (hang budget,
/// deadlock timeout, adaptive engine parameters), so a worker rebuilds
/// the exact TrialSpace the coordinator planned against.
util::Json deployment_to_json(const harness::DeploymentConfig& config);
harness::DeploymentConfig deployment_from_json(const util::Json& json);

util::Json refs_to_json(const std::vector<harness::TrialRef>& refs);
std::vector<harness::TrialRef> refs_from_json(const util::Json& json);

util::Json results_to_json(const std::vector<harness::TrialResult>& results);
std::vector<harness::TrialResult> results_from_json(const util::Json& json);

}  // namespace resilience::shard
