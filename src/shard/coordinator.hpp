// Shard coordinator (DESIGN.md §13): multi-process campaign execution.
//
// The coordinator splits a campaign's trials into work units of TrialRefs
// and farms them to worker processes (the same binary re-exec'd with
// --shard-worker) over Unix-domain socketpairs. Because a trial's
// randomness is a pure function of (config.seed, ref) and tallies are
// folded in ref order, the merged result is bit-identical to
// CampaignRunner::run on one process — sharding is execution policy, like
// the in-process executor's worker count.
//
// The golden pre-pass runs exactly once: the coordinator fills the
// on-disk GoldenStore before spawning workers, and workers load the
// golden run (checkpoints included) from disk.
//
// Crash recovery: a worker that EOFs, errors, or exceeds the unit
// timeout is reaped, its in-flight unit is re-enqueued, and a
// replacement is spawned (shard.worker_restarts); the re-run unit
// produces the same outcomes, so a crash costs time, never correctness.
#pragma once

#include <chrono>
#include <string>

#include "harness/campaign.hpp"
#include "shard/protocol.hpp"

namespace resilience::shard {

struct ShardOptions {
  /// Worker processes. Values < 1 are treated as 1.
  int shards = 2;
  /// GoldenStore directory shared by coordinator and workers. Empty: a
  /// private temp directory, removed when the campaign finishes (the
  /// store then only de-duplicates the pre-pass within this run).
  std::string golden_store_dir;
  /// Worker binary; empty re-executes this binary (/proc/self/exe).
  std::string worker_path;
  /// A worker that holds one unit longer than this is presumed wedged:
  /// killed, re-enqueued, replaced.
  std::chrono::milliseconds unit_timeout{600'000};
  /// Replacement workers spawned over the campaign before giving up and
  /// failing the run.
  int max_worker_restarts = 8;
  /// Testing hook (RESILIENCE_SHARD_KILL): worker 0's first incarnation
  /// SIGKILLs itself after completing this many units, exercising the
  /// recovery path. -1 = off.
  int debug_kill_unit = -1;
  /// Frame encoding the coordinator speaks and expects workers to echo in
  /// the handshake. Workers resolve theirs from RESILIENCE_WIRE (which
  /// they inherit), so the two agree unless the environment is changed
  /// between spawn and exec — which the handshake then rejects.
  WireFormat wire = WireFormat::Binary;

  /// Resolve from RESILIENCE_SHARDS / RESILIENCE_GOLDEN_STORE /
  /// RESILIENCE_SHARD_KILL / RESILIENCE_WIRE (util::RuntimeOptions).
  static ShardOptions from_runtime();
};

/// Execute the campaign across `opts.shards` worker processes. Blocking;
/// returns the same CampaignResult (bit-identical outcomes, tallies, and
/// saved JSON modulo wall_seconds) as CampaignRunner::run(app, config).
/// Throws std::runtime_error when workers cannot be spawned or die more
/// than opts.max_worker_restarts times.
harness::CampaignResult run_sharded_campaign(
    const apps::App& app, const harness::DeploymentConfig& config,
    const ShardOptions& opts,
    telemetry::MetricScope* metrics_parent = nullptr);

}  // namespace resilience::shard
