// Long-running campaign service (DESIGN.md §13).
//
// `resilience_cli serve <socket>` turns the binary into a daemon that
// accepts campaign requests over an AF_UNIX stream socket (the shard
// protocol's length-prefixed framing, always JSON payloads — this is the
// external request API, so RESILIENCE_WIRE does not apply), executes each —
// sharded when the request or environment asks for it — and streams the
// serialized CampaignResult back. Identical requests are served from an
// in-memory cache: campaigns are deterministic in (app, config), so the
// cached JSON is byte-for-byte what a re-run would produce.
//
// Request vocabulary (the "type" field):
//   ping                          -> {type: "pong"}
//   campaign {app, size_class, config, shards?} ->
//       {type: "result", cached, campaign: <campaign JSON>}
//   stats                         -> {type: "stats", requests, cache_hits}
//   shutdown                      -> {type: "ok"} and the server exits
// Failures answer {type: "error", message} and keep the server alive.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "util/json.hpp"

namespace resilience::shard {

/// The request dispatcher, separated from socket plumbing so tests can
/// drive it JSON-in/JSON-out.
class StudyService {
 public:
  /// Handle one request; never throws — failures become error replies.
  util::Json handle(const util::Json& request);

  /// True once a shutdown request was handled; run_server exits then.
  [[nodiscard]] bool shutdown_requested() const noexcept { return shutdown_; }

  [[nodiscard]] std::size_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::size_t cache_hits() const noexcept { return cache_hits_; }

 private:
  util::Json run_campaign(const util::Json& request);

  /// canonical request dump -> serialized campaign reply payload.
  std::map<std::string, std::string> cache_;
  std::size_t requests_ = 0;
  std::size_t cache_hits_ = 0;
  bool shutdown_ = false;
};

/// Bind `socket_path` (unlinking any stale socket first), accept one
/// client at a time, and answer frames until a shutdown request arrives.
/// Returns the process exit code.
int run_server(const std::string& socket_path);

/// Client side: connect to `socket_path`, send one request frame, and
/// return the reply. Throws std::runtime_error on connection failure or a
/// protocol violation.
util::Json send_request(const std::string& socket_path,
                        const util::Json& request);

}  // namespace resilience::shard
