#include "fsefi/fault_context.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "telemetry/telemetry.hpp"
#include "util/fiber_tls.hpp"
#include "util/options.hpp"

namespace resilience::fsefi {

namespace {

// -1 = follow RuntimeOptions, 0 = forced off, 1 = forced on.
std::atomic<int> g_fast_real_override{-1};

// The installed fault context is per-rank state: under the fiber
// scheduler it must follow the rank's fiber across worker threads, so
// register the slot for scheduler-side migration.
[[maybe_unused]] const std::size_t g_context_tls_slot =
    util::FiberTlsRegistry::add({
        []() noexcept -> void* { return detail::tl_context; },
        [](void* v) noexcept {
          detail::tl_context = static_cast<FaultContext*>(v);
        },
        nullptr,
    });

}  // namespace

bool fast_real_enabled() noexcept {
  const int forced = g_fast_real_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_options = util::RuntimeOptions::global().fast_real;
  return from_options;
}

void set_fast_real_enabled(bool enabled) noexcept {
  g_fast_real_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

double flip_bit(double value, int bit) noexcept {
  const int clamped = std::clamp(bit, 0, 63);
  const auto bits = std::bit_cast<std::uint64_t>(value);
  return std::bit_cast<double>(bits ^ (1ULL << clamped));
}

double flip_bits(double value, int bit, int width) noexcept {
  const int lo = std::clamp(bit, 0, 63);
  const int hi = std::clamp(bit + std::max(width, 1) - 1, lo, 63);
  std::uint64_t mask = 0;
  for (int b = lo; b <= hi; ++b) mask |= 1ULL << b;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(value) ^ mask);
}

const char* to_string(FaultPattern pattern) noexcept {
  switch (pattern) {
    case FaultPattern::SingleBit:
      return "single-bit";
    case FaultPattern::DoubleBit:
      return "double-bit";
    case FaultPattern::Burst4:
      return "burst-4";
    case FaultPattern::Byte:
      return "byte";
    case FaultPattern::RankCrash:
      return "rank-crash";
  }
  return "?";
}

void FaultContext::arm(InjectionPlan plan) {
  reset();
  const auto by_op_index = [](const InjectionPoint& a,
                              const InjectionPoint& b) {
    return a.op_index < b.op_index;
  };
  if (!std::is_sorted(plan.points.begin(), plan.points.end(), by_op_index)) {
    throw std::invalid_argument("InjectionPlan points must be sorted");
  }
  if (!std::is_sorted(plan.payload_points.begin(), plan.payload_points.end(),
                      by_op_index)) {
    throw std::invalid_argument(
        "InjectionPlan payload points must be sorted");
  }
  if (!std::is_sorted(plan.state_faults.begin(), plan.state_faults.end(),
                      [](const StateFault& a, const StateFault& b) {
                        return a.boundary < b.boundary;
                      })) {
    throw std::invalid_argument(
        "InjectionPlan state faults must be sorted by boundary");
  }
  // Pre-size the trace so the first flip never reallocates inside the
  // instrumented hot path.
  events_.reserve(plan.points.size());
  plan_ = std::move(plan);
  armed_ = true;
  filter_word_ = filter_word(plan_.kinds, plan_.regions);
  recompute_countdown();
  // Which dispatch path this armed context will take — the arm-time state
  // is logical (a function of plan + kill switch), unlike transient
  // FastIdle<->FastLive flips during the run.
  switch (state_) {
    case HotState::FastIdle:
      telemetry::count(telemetry::Counter::FsefiDispatchFastIdle);
      break;
    case HotState::FastLive:
      telemetry::count(telemetry::Counter::FsefiDispatchFastLive);
      break;
    case HotState::Reference:
      telemetry::count(telemetry::Counter::FsefiDispatchReference);
      break;
  }
}

void FaultContext::reset() {
  profile_ = OpCountProfile{};
  ops_total_ = 0;
  filtered_ops_ = 0;
  recv_reals_ = 0;
  plan_ = InjectionPlan{};
  armed_ = false;
  next_point_ = 0;
  next_payload_ = 0;
  events_.clear();
  contaminated_ = false;
  first_contamination_op_ = 0;
  set_region(Region::Common);
  state_ = fast_real_enabled() ? HotState::FastIdle : HotState::Reference;
  filter_word_ = 0;
  filtered_bias_ = 0;
  recompute_countdown();
}

void FaultContext::fast_forward(const OpCountProfile& target) noexcept {
  // profile_row_ points into profile_.counts; assigning the values in
  // place keeps it valid.
  profile_ = target;
  if (!fast()) {
    // The reference path maintains dedicated counters instead of deriving
    // them from the profile; advance them to the same values the per-op
    // implementation would have reached.
    ops_total_ = target.total();
    filtered_ops_ =
        armed_ ? target.matching(plan_.kinds, plan_.regions) : 0;
  }
  recompute_countdown();
}

void FaultContext::recompute_countdown() noexcept {
  if (state_ != HotState::Reference) {
    const bool idle = op_budget_ == 0 && next_point_ >= plan_.points.size();
    state_ = idle ? HotState::FastIdle : HotState::FastLive;
  }
  std::uint64_t countdown = kIdleCountdown;
  if (op_budget_ != 0) {
    // The guard throws during the op that makes the op total exceed the
    // budget; if it is already exceeded (budget lowered mid-run), the very
    // next op must throw.
    const std::uint64_t total = ops_total();
    countdown = total >= op_budget_ ? 1 : op_budget_ - total + 1;
  }
  if (next_point_ < plan_.points.size()) {
    // The next injection fires during the op whose pre-op filtered index
    // equals op_index. The filtered stream advances at most one per op,
    // so this many ops must pass first — a lower bound that on_event
    // re-tightens whenever it elapses early.
    const std::uint64_t to_injection =
        plan_.points[next_point_].op_index - filtered_ops() + 1;
    countdown = to_injection < countdown ? to_injection : countdown;
  }
  countdown_ = countdown;
}

void FaultContext::on_event(OpKind kind, double& a, double& b) {
  telemetry::count(telemetry::Counter::FsefiCountdownRefills);
  if (op_budget_ != 0 && ops_total() > op_budget_) {
    // The reference path throws before filter accounting: if this op
    // matched, the derived filtered count must exclude it. Leave a live
    // countdown so catch-and-continue keeps throwing.
    filtered_bias_ += (filter_word_ >> filter_bit(region_, kind)) & 1u;
    countdown_ = 1;
    telemetry::count(telemetry::Counter::FsefiBudgetThrows);
    throw HangBudgetExceeded();
  }
  if (((filter_word_ >> filter_bit(region_, kind)) & 1u) != 0) {
    const std::uint64_t idx = filtered_ops() - 1;  // this op's filtered index
    if (plan_.crash && next_point_ < plan_.points.size() &&
        plan_.points[next_point_].op_index == idx) {
      ++next_point_;
      countdown_ = 1;  // catch-and-continue keeps the rank dead
      telemetry::count(telemetry::Counter::ScenarioRankCrashes);
      telemetry::trace_instant("scenario", "rank_crash", "op", ops_total());
      throw RankCrashError();
    }
    while (next_point_ < plan_.points.size() &&
           plan_.points[next_point_].op_index == idx) {
      const InjectionPoint& pt = plan_.points[next_point_];
      double& target = (pt.operand == 0) ? a : b;
      const double before = target;
      target = flip_bits(target, pt.bit, pt.width);
      events_.push_back({ops_total(), idx, kind, region_, pt.operand, pt.bit,
                         pt.width, before, target});
      ++next_point_;
      mark_contaminated();
      telemetry::count(telemetry::Counter::FsefiInjections);
      telemetry::trace_instant("fsefi", "injection", "op", ops_total());
    }
  }
  recompute_countdown();
}

void FaultContext::reference_on_op(OpKind kind, double& a, double& b) {
  ++ops_total_;
  if (op_budget_ != 0 && ops_total_ > op_budget_) {
    telemetry::count(telemetry::Counter::FsefiBudgetThrows);
    throw HangBudgetExceeded();
  }
  if (armed_ && contains(plan_.kinds, kind) &&
      contains(plan_.regions, region_)) {
    const std::uint64_t idx = filtered_ops_++;
    if (plan_.crash && next_point_ < plan_.points.size() &&
        plan_.points[next_point_].op_index == idx) {
      ++next_point_;
      telemetry::count(telemetry::Counter::ScenarioRankCrashes);
      telemetry::trace_instant("scenario", "rank_crash", "op", ops_total_);
      throw RankCrashError();
    }
    while (next_point_ < plan_.points.size() &&
           plan_.points[next_point_].op_index == idx) {
      const InjectionPoint& pt = plan_.points[next_point_];
      double& target = (pt.operand == 0) ? a : b;
      const double before = target;
      target = flip_bits(target, pt.bit, pt.width);
      events_.push_back({ops_total_, idx, kind, region_, pt.operand, pt.bit,
                         pt.width, before, target});
      ++next_point_;
      mark_contaminated();
      telemetry::count(telemetry::Counter::FsefiInjections);
      telemetry::trace_instant("fsefi", "injection", "op", ops_total_);
    }
  }
}

const InjectionPoint* FaultContext::take_payload_flip_slow(
    std::uint64_t base, std::size_t n) noexcept {
  const InjectionPoint& pt = plan_.payload_points[next_payload_];
  if (pt.op_index < base || pt.op_index - base >= n) return nullptr;
  ++next_payload_;
  telemetry::count(telemetry::Counter::ScenarioPayloadFlips);
  telemetry::trace_instant("scenario", "payload_flip", "recv", pt.op_index);
  return &pt;
}

}  // namespace resilience::fsefi
