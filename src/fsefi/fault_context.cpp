#include "fsefi/fault_context.hpp"

#include <algorithm>
#include <bit>

namespace resilience::fsefi {

namespace {
thread_local FaultContext* tl_context = nullptr;
}  // namespace

double flip_bit(double value, int bit) noexcept {
  const int clamped = std::clamp(bit, 0, 63);
  const auto bits = std::bit_cast<std::uint64_t>(value);
  return std::bit_cast<double>(bits ^ (1ULL << clamped));
}

double flip_bits(double value, int bit, int width) noexcept {
  const int lo = std::clamp(bit, 0, 63);
  const int hi = std::clamp(bit + std::max(width, 1) - 1, lo, 63);
  std::uint64_t mask = 0;
  for (int b = lo; b <= hi; ++b) mask |= 1ULL << b;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(value) ^ mask);
}

const char* to_string(FaultPattern pattern) noexcept {
  switch (pattern) {
    case FaultPattern::SingleBit:
      return "single-bit";
    case FaultPattern::DoubleBit:
      return "double-bit";
    case FaultPattern::Burst4:
      return "burst-4";
  }
  return "?";
}

FaultContext* current_context() noexcept { return tl_context; }

void install_context(FaultContext* ctx) noexcept { tl_context = ctx; }

void FaultContext::arm(InjectionPlan plan) {
  reset();
  if (!std::is_sorted(plan.points.begin(), plan.points.end(),
                      [](const InjectionPoint& a, const InjectionPoint& b) {
                        return a.op_index < b.op_index;
                      })) {
    throw std::invalid_argument("InjectionPlan points must be sorted");
  }
  plan_ = std::move(plan);
  armed_ = true;
}

void FaultContext::reset() {
  profile_ = OpCountProfile{};
  ops_total_ = 0;
  filtered_ops_ = 0;
  plan_ = InjectionPlan{};
  armed_ = false;
  next_point_ = 0;
  events_.clear();
  contaminated_ = false;
  first_contamination_op_ = 0;
  region_ = Region::Common;
}

}  // namespace resilience::fsefi
