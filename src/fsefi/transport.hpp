// Glue between the fault injector and the transport: a rank becomes
// contaminated the moment a tainted value is delivered into its memory by
// a receive, matching P-FSEFI's per-process contamination tracking.
//
// Include this header (rather than simmpi/comm.hpp directly) in any
// translation unit that sends or receives fsefi::Real.
#pragma once

#include "fsefi/real.hpp"
#include "simmpi/transport_traits.hpp"

namespace resilience::simmpi {

template <>
struct TransportTraits<resilience::fsefi::Real> {
  static void on_receive(std::span<const resilience::fsefi::Real> values) noexcept {
    using resilience::fsefi::current_context;
    auto* ctx = current_context();
    if (ctx == nullptr) return;
    for (const auto& v : values) {
      if (v.tainted()) {
        ctx->note_external_taint();
        return;
      }
    }
  }

  /// Reduction combines are MPI-library arithmetic: suspend the rank's
  /// fault context so they are neither counted nor injectable. Shadow
  /// values still flow through the combine, so corruption carried by a
  /// contribution propagates into the reduced result (and on_receive has
  /// already marked the contamination of this rank).
  class LibraryGuard {
   public:
    LibraryGuard() noexcept
        : saved_(resilience::fsefi::current_context()) {
      resilience::fsefi::install_context(nullptr);
    }
    ~LibraryGuard() { resilience::fsefi::install_context(saved_); }
    LibraryGuard(const LibraryGuard&) = delete;
    LibraryGuard& operator=(const LibraryGuard&) = delete;

   private:
    resilience::fsefi::FaultContext* saved_;
  };
};

}  // namespace resilience::simmpi
