// Glue between the fault injector and the transport: a rank becomes
// contaminated the moment a tainted value is delivered into its memory by
// a receive, matching P-FSEFI's per-process contamination tracking.
//
// Include this header (rather than simmpi/comm.hpp directly) in any
// translation unit that sends or receives fsefi::Real.
#pragma once

#include "fsefi/real.hpp"
#include "simmpi/transport_traits.hpp"

namespace resilience::simmpi {

template <>
struct TransportTraits<resilience::fsefi::Real> {
  static void on_receive(std::span<resilience::fsefi::Real> values) noexcept {
    using resilience::fsefi::current_context;
    using resilience::fsefi::Real;
    auto* ctx = current_context();
    if (ctx == nullptr) return;
    // Advance this rank's delivered-Real stream — the MessagePayload
    // sample space, recorded by golden runs and indexed by payload
    // injection points. The count must advance identically in golden and
    // trial runs, armed or not.
    const std::uint64_t base = ctx->recv_reals();
    ctx->add_recv_reals(values.size());
    // Perform any payload flips due in this delivery window: corrupt the
    // primary value in place (the shadow keeps the fault-free value, so
    // divergence tracking sees the corruption immediately).
    while (const auto* pt = ctx->take_payload_flip(base, values.size())) {
      Real& v = values[static_cast<std::size_t>(pt->op_index - base)];
      v = Real::corrupted(
          resilience::fsefi::flip_bits(v.value(), pt->bit, pt->width),
          v.shadow());
      ctx->note_external_taint();
    }
    for (const auto& v : values) {
      if (v.tainted()) {
        ctx->note_external_taint();
        return;
      }
    }
  }

  /// Reduction combines are MPI-library arithmetic: suspend the rank's
  /// fault context so they are neither counted nor injectable. Shadow
  /// values still flow through the combine, so corruption carried by a
  /// contribution propagates into the reduced result (and on_receive has
  /// already marked the contamination of this rank).
  class LibraryGuard {
   public:
    LibraryGuard() noexcept
        : saved_(resilience::fsefi::current_context()) {
      resilience::fsefi::install_context(nullptr);
    }
    ~LibraryGuard() { resilience::fsefi::install_context(saved_); }
    LibraryGuard(const LibraryGuard&) = delete;
    LibraryGuard& operator=(const LibraryGuard&) = delete;

   private:
    resilience::fsefi::FaultContext* saved_;
  };
};

}  // namespace resilience::simmpi
