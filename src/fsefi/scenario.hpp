// FaultScenario — the unified fault-injection descriptor (DESIGN.md §16).
//
// The paper's Section 3 model needs exactly one scenario: a single bit
// flip in a floating-point register operand at a uniformly drawn dynamic
// operation index. Field studies of production systems (Cielo; FINJ's
// timeline-driven campaigns — see PAPERS.md) observe a wider failure
// surface: byte-granularity corruption, in-flight message corruption,
// resident-state corruption, multi-fault timelines, and outright rank
// crashes. A FaultScenario names one point in that space along three
// axes:
//
//   * domain  — what gets corrupted: a register operand mid-operation,
//     a message payload as it is delivered, or rank-local resident state
//     at an iteration boundary;
//   * pattern — the corruption shape: single bit, two independent bits,
//     a 4-bit burst, a whole byte, or rank death (fail-stop);
//   * arrival — when faults strike: one fixed dynamic-op index per trial
//     (the paper's model) or a Poisson timeline over the trial's filtered
//     op stream with an MTBF knob and >= 1 faults per trial.
//
// DeploymentConfig carries a FaultScenario; TrialSpace expands it into
// per-rank InjectionPlans with derive_seed substreams, so every campaign
// stays bit-identical across --jobs, scheduler modes, checkpoint
// settings, and shard counts. The named catalog below is what the CLI's
// `--scenario` flag and `scenarios` subcommand expose.
#pragma once

#include <span>
#include <string_view>

#include "fsefi/plan.hpp"

namespace resilience::fsefi {

/// What a fault corrupts.
enum class FaultDomain : std::uint8_t {
  RegisterOperand = 0,  ///< an operand of one dynamic FP operation
  MessagePayload = 1,   ///< a Real element as a receive delivers it
  ResidentState = 2,    ///< a live-state Real at an iteration boundary
};

/// When faults strike within a trial.
enum class ArrivalModel : std::uint8_t {
  FixedOpIndex = 0,    ///< one uniformly drawn op index (the paper)
  PoissonTimeline = 1, ///< exponential inter-arrivals, >= 1 per trial
};

const char* to_string(FaultDomain domain) noexcept;
const char* to_string(ArrivalModel arrival) noexcept;

/// A complete injection scenario. The kind/region filters define the
/// eligible dynamic-op stream exactly as before; mtbf_factor only
/// matters under PoissonTimeline, where the mean time between faults is
/// mtbf_factor times the trial's total filtered-op count.
struct FaultScenario {
  FaultDomain domain = FaultDomain::RegisterOperand;
  FaultPattern pattern = FaultPattern::SingleBit;
  ArrivalModel arrival = ArrivalModel::FixedOpIndex;
  KindMask kinds = KindMask::AddMul;
  RegionMask regions = RegionMask::All;
  double mtbf_factor = 0.5;

  friend bool operator==(const FaultScenario&,
                         const FaultScenario&) = default;

  /// True when the scenario is expressible in the pre-scenario schema
  /// (register operand, fixed arrival, one of the original patterns, the
  /// default MTBF): such configs serialize exactly as they always did,
  /// so old saved campaigns stay byte-identical under load + re-save.
  [[nodiscard]] bool legacy() const noexcept {
    return domain == FaultDomain::RegisterOperand &&
           arrival == ArrivalModel::FixedOpIndex &&
           (pattern == FaultPattern::SingleBit ||
            pattern == FaultPattern::DoubleBit ||
            pattern == FaultPattern::Burst4) &&
           mtbf_factor == 0.5;
  }

  /// True for fail-stop scenarios (rank death instead of a flip).
  [[nodiscard]] bool crash() const noexcept {
    return pattern == FaultPattern::RankCrash;
  }
};

/// One named catalog entry.
struct ScenarioCatalogEntry {
  const char* name;
  FaultScenario scenario;
  const char* summary;
};

/// The built-in scenario catalog, in display order. "paper" is the
/// default (and the implicit scenario of every pre-catalog campaign).
[[nodiscard]] std::span<const ScenarioCatalogEntry> scenario_catalog() noexcept;

/// Catalog entry by name, or nullptr when unknown.
[[nodiscard]] const ScenarioCatalogEntry* find_scenario(
    std::string_view name) noexcept;

/// Catalog scenario by name; throws std::invalid_argument listing the
/// known names when `name` is not in the catalog.
[[nodiscard]] FaultScenario scenario_by_name(std::string_view name);

/// The catalog name of `scenario` ("custom" when no entry matches
/// exactly).
[[nodiscard]] const char* scenario_name(const FaultScenario& scenario) noexcept;

}  // namespace resilience::fsefi
