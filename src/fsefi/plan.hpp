// Fault model vocabulary: which dynamic floating-point operations are
// eligible for injection, and where exactly a given trial flips a bit.
//
// This mirrors F-SEFI's configuration surface (paper Section 2): a fault
// injection deployment fixes an instruction-type filter (we default to
// floating-point add and multiply, as the paper does), a region filter
// (common vs parallel-unique computation, Section 3.1), and each trial
// then picks a random dynamic operation index, operand, and bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace resilience::fsefi {

/// Instrumented floating-point operation kinds ("instruction types").
enum class OpKind : std::uint8_t { Add = 0, Sub, Mul, Div, Sqrt };
inline constexpr int kNumOpKinds = 5;

/// Bitmask over OpKind.
enum class KindMask : std::uint8_t {
  None = 0,
  Add = 1u << 0,
  Sub = 1u << 1,
  Mul = 1u << 2,
  Div = 1u << 3,
  Sqrt = 1u << 4,
  All = 0x1f,
  /// The paper's default: FP addition and multiplication.
  AddMul = Add | Mul,
};

constexpr KindMask operator|(KindMask a, KindMask b) noexcept {
  return static_cast<KindMask>(static_cast<std::uint8_t>(a) |
                               static_cast<std::uint8_t>(b));
}
constexpr bool contains(KindMask mask, OpKind kind) noexcept {
  return (static_cast<std::uint8_t>(mask) &
          (1u << static_cast<std::uint8_t>(kind))) != 0;
}
constexpr KindMask mask_of(OpKind kind) noexcept {
  return static_cast<KindMask>(1u << static_cast<std::uint8_t>(kind));
}

/// Code-region classification (paper Observation 1): common computation
/// exists in both serial and parallel execution; parallel-unique
/// computation only exists in parallel execution.
enum class Region : std::uint8_t { Common = 0, ParallelUnique = 1 };
inline constexpr int kNumRegions = 2;

/// Bitmask over Region.
enum class RegionMask : std::uint8_t {
  None = 0,
  Common = 1u << 0,
  ParallelUnique = 1u << 1,
  All = 0x3,
};

constexpr RegionMask operator|(RegionMask a, RegionMask b) noexcept {
  return static_cast<RegionMask>(static_cast<std::uint8_t>(a) |
                                 static_cast<std::uint8_t>(b));
}
constexpr bool contains(RegionMask mask, Region region) noexcept {
  return (static_cast<std::uint8_t>(mask) &
          (1u << static_cast<std::uint8_t>(region))) != 0;
}

/// Bit position of (region, kind) in a packed filter word. Regions get
/// 8-bit lanes so the index is a shift-or, not a multiply.
constexpr int filter_bit(Region region, OpKind kind) noexcept {
  return (static_cast<int>(region) << 3) | static_cast<int>(kind);
}

/// Packed (region x kind) eligibility word for an injection plan's
/// filters: bit filter_bit(r, k) is set iff ops of kind k in region r
/// belong to the plan's filtered dynamic-op stream. The fault-injection
/// hot path tests one bit here instead of two mask lookups.
constexpr std::uint32_t filter_word(KindMask kinds,
                                    RegionMask regions) noexcept {
  std::uint32_t word = 0;
  for (int r = 0; r < kNumRegions; ++r) {
    for (int k = 0; k < kNumOpKinds; ++k) {
      if (contains(regions, static_cast<Region>(r)) &&
          contains(kinds, static_cast<OpKind>(k))) {
        word |= 1u << filter_bit(static_cast<Region>(r),
                                 static_cast<OpKind>(k));
      }
    }
  }
  return word;
}

/// One fault: at the `op_index`-th dynamic operation matching the plan's
/// filters (0-based, counted on this rank only), flip `width` adjacent
/// bits starting at `bit` of operand `operand` (0 = left, 1 = right)
/// before the operation executes. width = 1 is the paper's single-bit
/// flip; larger widths model multi-bit upsets (the paper notes the
/// methodology does not depend on the single-bit assumption). Flips past
/// bit 63 are clipped.
struct InjectionPoint {
  std::uint64_t op_index = 0;
  std::uint8_t operand = 0;  ///< 0 or 1
  std::uint8_t bit = 0;      ///< 0..63 within the IEEE-754 double
  std::uint8_t width = 1;    ///< adjacent bits to flip (>= 1)
};

/// Fault patterns a deployment can use; each trial expands into one or
/// more InjectionPoints.
enum class FaultPattern : std::uint8_t {
  SingleBit,  ///< one random bit (the paper's model)
  DoubleBit,  ///< two independent random bits of the same operand
  Burst4,     ///< four adjacent bits starting at a random position
  Byte,       ///< one whole byte: 8 adjacent bits at a byte boundary
  RankCrash,  ///< no flip: the target rank dies at the drawn op (fail-stop)
};

const char* to_string(FaultPattern pattern) noexcept;

/// One resident-state fault: when the rank reaches the iteration boundary
/// whose golden record carries `boundary` (= app iteration index + 1),
/// flip `width` adjacent bits starting at `bit` of the primary value of
/// the `element`-th fsefi::Real in the rank's live-state views (elements
/// counted across the views in declaration order; Doubles views are not
/// part of the sample space).
struct StateFault {
  std::int32_t boundary = 0;
  std::uint64_t element = 0;
  std::uint8_t bit = 0;
  std::uint8_t width = 1;
};

/// A complete per-rank injection plan for one fault-injection test.
/// `points` must be sorted by op_index (duplicates allowed: two flips at
/// the same dynamic op hit both operands or the same operand twice), as
/// must `payload_points`; `state_faults` must be sorted by boundary.
struct InjectionPlan {
  KindMask kinds = KindMask::AddMul;
  RegionMask regions = RegionMask::All;
  std::vector<InjectionPoint> points;
  /// Payload faults: op_index counts fsefi::Real elements delivered into
  /// this rank by receives (point-to-point and collective-internal alike),
  /// 0-based; operand is unused.
  std::vector<InjectionPoint> payload_points;
  /// Resident-state faults applied at iteration boundaries.
  std::vector<StateFault> state_faults;
  /// Fail-stop plan: `points` mark where the rank dies instead of where a
  /// bit flips (only the first point can ever fire).
  bool crash = false;

  /// True when this plan injects anything at all on its rank.
  [[nodiscard]] bool armed() const noexcept {
    return !points.empty() || !payload_points.empty() ||
           !state_faults.empty();
  }
};

/// Dynamic-operation counts observed in one rank of a fault-free run,
/// broken down by region and kind. This is the sample space the harness
/// draws injection targets from.
struct OpCountProfile {
  std::uint64_t counts[kNumRegions][kNumOpKinds] = {};

  friend bool operator==(const OpCountProfile&,
                         const OpCountProfile&) = default;

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& row : counts)
      for (std::uint64_t c : row) sum += c;
    return sum;
  }

  /// Operations matching both filters.
  [[nodiscard]] std::uint64_t matching(KindMask kinds,
                                       RegionMask regions) const noexcept {
    std::uint64_t sum = 0;
    for (int r = 0; r < kNumRegions; ++r) {
      if (!contains(regions, static_cast<Region>(r))) continue;
      for (int k = 0; k < kNumOpKinds; ++k) {
        if (contains(kinds, static_cast<OpKind>(k))) sum += counts[r][k];
      }
    }
    return sum;
  }

  /// Operations in one region, any kind.
  [[nodiscard]] std::uint64_t in_region(Region region) const noexcept {
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts[static_cast<int>(region)]) sum += c;
    return sum;
  }
};

// ---- stratified-sampling vocabulary ---------------------------------------
// The adaptive campaign engine (DESIGN.md §12) partitions the injection
// space into strata: a stratum fixes one (region, kind) cell of the
// OpCountProfile plus one dynamic-op decile within each rank's cell
// stream. A stratum-constrained plan narrows its filters to the single
// cell, so op_index counts within the cell's own dynamic stream and the
// decile becomes a contiguous index range per rank.

/// One stratum of the injection space.
struct Stratum {
  Region region = Region::Common;
  OpKind kind = OpKind::Add;
  int decile = 0;    ///< 0..ndeciles-1
  int ndeciles = 10;

  /// Plan filters that restrict injection to this stratum's cell.
  [[nodiscard]] constexpr KindMask kinds() const noexcept {
    return mask_of(kind);
  }
  [[nodiscard]] constexpr RegionMask regions() const noexcept {
    return static_cast<RegionMask>(1u << static_cast<std::uint8_t>(region));
  }
};

/// Stable index of a stratum in the full (region x kind x decile) grid —
/// the substream id its trials are seeded from. Independent of which
/// strata turn out non-empty, so seeds survive profile changes in other
/// cells.
[[nodiscard]] constexpr std::size_t stratum_index(const Stratum& s) noexcept {
  return (static_cast<std::size_t>(s.region) *
              static_cast<std::size_t>(kNumOpKinds) +
          static_cast<std::size_t>(s.kind)) *
             static_cast<std::size_t>(s.ndeciles) +
         static_cast<std::size_t>(s.decile);
}

/// Half-open op-index range [lo, hi) that decile d of a cell holding
/// `count` filtered ops covers in that cell's dynamic stream. The floor
/// split is deterministic and the ndeciles ranges partition [0, count)
/// exactly.
[[nodiscard]] constexpr std::pair<std::uint64_t, std::uint64_t> decile_range(
    std::uint64_t count, int decile, int ndeciles) noexcept {
  const auto d = static_cast<std::uint64_t>(decile);
  const auto nd = static_cast<std::uint64_t>(ndeciles);
  // 128-bit intermediate: op counts can be large and the split must not
  // wrap.
  const auto lo = static_cast<std::uint64_t>(
      static_cast<__uint128_t>(count) * d / nd);
  const auto hi = static_cast<std::uint64_t>(
      static_cast<__uint128_t>(count) * (d + 1) / nd);
  return {lo, hi};
}

/// Ops of `profile` that fall into stratum `s`: the decile's share of the
/// (region, kind) cell.
[[nodiscard]] constexpr std::uint64_t stratum_population(
    const OpCountProfile& profile, const Stratum& s) noexcept {
  const std::uint64_t cell =
      profile.counts[static_cast<int>(s.region)][static_cast<int>(s.kind)];
  const auto [lo, hi] = decile_range(cell, s.decile, s.ndeciles);
  return hi - lo;
}

/// Flip one bit of an IEEE-754 double (the paper's single-bit-flip model).
double flip_bit(double value, int bit) noexcept;

/// Flip `width` adjacent bits starting at `bit`, clipped to bit 63.
double flip_bits(double value, int bit, int width) noexcept;

}  // namespace resilience::fsefi
