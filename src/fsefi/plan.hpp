// Fault model vocabulary: which dynamic floating-point operations are
// eligible for injection, and where exactly a given trial flips a bit.
//
// This mirrors F-SEFI's configuration surface (paper Section 2): a fault
// injection deployment fixes an instruction-type filter (we default to
// floating-point add and multiply, as the paper does), a region filter
// (common vs parallel-unique computation, Section 3.1), and each trial
// then picks a random dynamic operation index, operand, and bit.
#pragma once

#include <cstdint>
#include <vector>

namespace resilience::fsefi {

/// Instrumented floating-point operation kinds ("instruction types").
enum class OpKind : std::uint8_t { Add = 0, Sub, Mul, Div, Sqrt };
inline constexpr int kNumOpKinds = 5;

/// Bitmask over OpKind.
enum class KindMask : std::uint8_t {
  None = 0,
  Add = 1u << 0,
  Sub = 1u << 1,
  Mul = 1u << 2,
  Div = 1u << 3,
  Sqrt = 1u << 4,
  All = 0x1f,
  /// The paper's default: FP addition and multiplication.
  AddMul = Add | Mul,
};

constexpr KindMask operator|(KindMask a, KindMask b) noexcept {
  return static_cast<KindMask>(static_cast<std::uint8_t>(a) |
                               static_cast<std::uint8_t>(b));
}
constexpr bool contains(KindMask mask, OpKind kind) noexcept {
  return (static_cast<std::uint8_t>(mask) &
          (1u << static_cast<std::uint8_t>(kind))) != 0;
}
constexpr KindMask mask_of(OpKind kind) noexcept {
  return static_cast<KindMask>(1u << static_cast<std::uint8_t>(kind));
}

/// Code-region classification (paper Observation 1): common computation
/// exists in both serial and parallel execution; parallel-unique
/// computation only exists in parallel execution.
enum class Region : std::uint8_t { Common = 0, ParallelUnique = 1 };
inline constexpr int kNumRegions = 2;

/// Bitmask over Region.
enum class RegionMask : std::uint8_t {
  None = 0,
  Common = 1u << 0,
  ParallelUnique = 1u << 1,
  All = 0x3,
};

constexpr RegionMask operator|(RegionMask a, RegionMask b) noexcept {
  return static_cast<RegionMask>(static_cast<std::uint8_t>(a) |
                                 static_cast<std::uint8_t>(b));
}
constexpr bool contains(RegionMask mask, Region region) noexcept {
  return (static_cast<std::uint8_t>(mask) &
          (1u << static_cast<std::uint8_t>(region))) != 0;
}

/// Bit position of (region, kind) in a packed filter word. Regions get
/// 8-bit lanes so the index is a shift-or, not a multiply.
constexpr int filter_bit(Region region, OpKind kind) noexcept {
  return (static_cast<int>(region) << 3) | static_cast<int>(kind);
}

/// Packed (region x kind) eligibility word for an injection plan's
/// filters: bit filter_bit(r, k) is set iff ops of kind k in region r
/// belong to the plan's filtered dynamic-op stream. The fault-injection
/// hot path tests one bit here instead of two mask lookups.
constexpr std::uint32_t filter_word(KindMask kinds,
                                    RegionMask regions) noexcept {
  std::uint32_t word = 0;
  for (int r = 0; r < kNumRegions; ++r) {
    for (int k = 0; k < kNumOpKinds; ++k) {
      if (contains(regions, static_cast<Region>(r)) &&
          contains(kinds, static_cast<OpKind>(k))) {
        word |= 1u << filter_bit(static_cast<Region>(r),
                                 static_cast<OpKind>(k));
      }
    }
  }
  return word;
}

/// One fault: at the `op_index`-th dynamic operation matching the plan's
/// filters (0-based, counted on this rank only), flip `width` adjacent
/// bits starting at `bit` of operand `operand` (0 = left, 1 = right)
/// before the operation executes. width = 1 is the paper's single-bit
/// flip; larger widths model multi-bit upsets (the paper notes the
/// methodology does not depend on the single-bit assumption). Flips past
/// bit 63 are clipped.
struct InjectionPoint {
  std::uint64_t op_index = 0;
  std::uint8_t operand = 0;  ///< 0 or 1
  std::uint8_t bit = 0;      ///< 0..63 within the IEEE-754 double
  std::uint8_t width = 1;    ///< adjacent bits to flip (>= 1)
};

/// Fault patterns a deployment can use; each trial expands into one or
/// more InjectionPoints.
enum class FaultPattern : std::uint8_t {
  SingleBit,  ///< one random bit (the paper's model)
  DoubleBit,  ///< two independent random bits of the same operand
  Burst4,     ///< four adjacent bits starting at a random position
};

const char* to_string(FaultPattern pattern) noexcept;

/// A complete per-rank injection plan for one fault-injection test.
/// `points` must be sorted by op_index (duplicates allowed: two flips at
/// the same dynamic op hit both operands or the same operand twice).
struct InjectionPlan {
  KindMask kinds = KindMask::AddMul;
  RegionMask regions = RegionMask::All;
  std::vector<InjectionPoint> points;
};

/// Dynamic-operation counts observed in one rank of a fault-free run,
/// broken down by region and kind. This is the sample space the harness
/// draws injection targets from.
struct OpCountProfile {
  std::uint64_t counts[kNumRegions][kNumOpKinds] = {};

  friend bool operator==(const OpCountProfile&,
                         const OpCountProfile&) = default;

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& row : counts)
      for (std::uint64_t c : row) sum += c;
    return sum;
  }

  /// Operations matching both filters.
  [[nodiscard]] std::uint64_t matching(KindMask kinds,
                                       RegionMask regions) const noexcept {
    std::uint64_t sum = 0;
    for (int r = 0; r < kNumRegions; ++r) {
      if (!contains(regions, static_cast<Region>(r))) continue;
      for (int k = 0; k < kNumOpKinds; ++k) {
        if (contains(kinds, static_cast<OpKind>(k))) sum += counts[r][k];
      }
    }
    return sum;
  }

  /// Operations in one region, any kind.
  [[nodiscard]] std::uint64_t in_region(Region region) const noexcept {
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts[static_cast<int>(region)]) sum += c;
    return sum;
  }
};

/// Flip one bit of an IEEE-754 double (the paper's single-bit-flip model).
double flip_bit(double value, int bit) noexcept;

/// Flip `width` adjacent bits starting at `bit`, clipped to bit 63.
double flip_bits(double value, int bit, int width) noexcept;

}  // namespace resilience::fsefi
