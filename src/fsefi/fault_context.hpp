// Per-rank fault-injection state: the software analogue of one F-SEFI
// guest VM (paper Section 2).
//
// Exactly one FaultContext is installed per rank thread for the duration
// of an application run. Every instrumented floating-point operation
// reports here: the context counts dynamic operations by (region, kind),
// performs the planned bit flips when their dynamic index comes up, and
// records whether this rank ever touched corrupted data ("contamination",
// the quantity profiled in Figures 1 and 2 of the paper).
//
// Corruption is tracked by *value divergence*, not symbolic taint: every
// fsefi::Real carries a shadow copy that computes the fault-free result
// alongside the (possibly corrupted) primary value. A rank counts as
// contaminated when a value whose primary and shadow bit patterns differ
// is produced by its computation, injected into it, or delivered into its
// memory by a receive. This matches F-SEFI's memory-diff observation
// model, including its most important consequence: a low-order mantissa
// flip whose contribution is rounded away in a long accumulation stops
// propagating — which is why most injections in CG contaminate only one
// MPI process (Figure 1a).
//
// Hot-path design (DESIGN.md §8): a fault-free operation must cost about
// as much as the plain double op plus two counter increments. Two
// mechanisms deliver that:
//
//  1. A *countdown dispatcher*: arm()/reset()/set_op_budget() precompute
//     the packed (region x kind) filter word and a conservative distance,
//     in dynamic ops, to the next *event* — the next injection point
//     becoming due in the filtered stream, or the hang budget running
//     out. The per-op path is then counter bumps, one branch-free
//     filtered-stream increment, and a single predictable decrement; all
//     plan matching, bit flipping, budget throwing, and countdown
//     recomputation live in the cold out-of-line on_event().
//  2. A *blocked counting API* (quiet_ops() + on_block()): kernels ask
//     how many upcoming ops are guaranteed event-free, run that window as
//     raw double arithmetic in the exact same operation order, and
//     account the whole block with two bulk adds.
//
// The pre-countdown logic is kept alive, bit-identical, as the reference
// path: RESILIENCE_FAST_REAL=0 (or set_fast_real_enabled(false) before
// the context is reset/armed) routes every op through it, and the
// differential tests assert that profiles, filtered indices, injection
// traces, and campaign results match the fast path exactly.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fsefi/plan.hpp"

namespace resilience::fsefi {

/// Thrown when a rank exceeds its dynamic-operation budget. The budget is
/// the deterministic stand-in for a wall-clock hang detector: a corrupted
/// run that executes many times the fault-free operation count is "hung"
/// and the harness classifies it as a Failure outcome.
class HangBudgetExceeded : public std::runtime_error {
 public:
  HangBudgetExceeded()
      : std::runtime_error("dynamic FP operation budget exceeded (hang)") {}
};

/// Thrown by the fault context when a fail-stop (RankCrash) injection
/// point fires: the rank dies at its planned dynamic op and the simmpi
/// runtime's abort/teardown path winds the rest of the job down, exactly
/// as an uncaught application error would. The harness recognizes the
/// message substring and classifies the trial as a Crash outcome.
class RankCrashError : public std::runtime_error {
 public:
  RankCrashError()
      : std::runtime_error("injected rank crash (fail-stop fault)") {}
};

/// True when primary and shadow values diverge. Bit-pattern comparison so
/// that NaN == NaN and +0 != -0 behave as memory diffing would.
inline bool values_diverge(double primary, double shadow) noexcept {
  return std::bit_cast<std::uint64_t>(primary) !=
         std::bit_cast<std::uint64_t>(shadow);
}

/// Whether newly reset/armed FaultContexts use the countdown fast path
/// (default) or the pre-countdown reference implementation. The
/// RESILIENCE_FAST_REAL env var ("0" disables) sets the default;
/// set_fast_real_enabled() forces it per process (tests and benches).
[[nodiscard]] bool fast_real_enabled() noexcept;
void set_fast_real_enabled(bool enabled) noexcept;

/// Record of one performed injection (for debugging and trace analysis:
/// F-SEFI similarly maps each injected instruction back to the
/// application).
struct InjectionEvent {
  std::uint64_t op_total = 0;     ///< unfiltered dynamic op count at injection
  std::uint64_t op_filtered = 0;  ///< index within the filtered stream
  OpKind kind = OpKind::Add;
  Region region = Region::Common;
  std::uint8_t operand = 0;
  std::uint8_t bit = 0;
  std::uint8_t width = 1;
  double value_before = 0.0;
  double value_after = 0.0;

  friend bool operator==(const InjectionEvent&,
                         const InjectionEvent&) = default;
};

class FaultContext {
 public:
  FaultContext() = default;

  // Contexts are pinned per rank; copying one mid-run is always a bug.
  FaultContext(const FaultContext&) = delete;
  FaultContext& operator=(const FaultContext&) = delete;

  /// Install an injection plan for the next run. Clears all counters.
  /// Throws std::invalid_argument if plan.points is not sorted by op_index.
  void arm(InjectionPlan plan);

  /// Clear counters and any armed plan (counting-only mode).
  void reset();

  /// Abort the run (via HangBudgetExceeded) once more than `budget`
  /// instrumented operations execute. 0 disables the guard.
  void set_op_budget(std::uint64_t budget) noexcept {
    op_budget_ = budget;
    recompute_countdown();
  }

  // ---- observed results ---------------------------------------------------

  [[nodiscard]] const OpCountProfile& profile() const noexcept {
    return profile_;
  }
  /// Total dynamic operations so far. The fast path maintains only the
  /// per-(region, kind) profile cells in its per-op code and derives the
  /// total on demand — the profile advances in lockstep with the reference
  /// path's dedicated counter, so the value is bit-identical.
  [[nodiscard]] std::uint64_t ops_total() const noexcept {
    return fast() ? profile_.total() : ops_total_;
  }
  /// Dynamic operations that matched the armed plan's filters so far (the
  /// stream injection points index into). 0 when never armed. Derived on
  /// the fast path: an op advances the filtered stream iff it lands in a
  /// (region, kind) cell selected by the filters, so the stream length is
  /// profile_.matching(...) — corrected by filtered_bias_ for ops the
  /// reference path counts in the profile but not the stream (the
  /// budget-throw ordering, see on_event).
  [[nodiscard]] std::uint64_t filtered_ops() const noexcept {
    if (!fast()) return filtered_ops_;
    if (!armed_) return 0;
    return profile_.matching(plan_.kinds, plan_.regions) -
           static_cast<std::uint64_t>(filtered_bias_);
  }
  /// Number of planned flips actually performed.
  [[nodiscard]] std::size_t injections_done() const noexcept {
    return next_point_;
  }
  /// Trace of performed injections, in execution order.
  [[nodiscard]] const std::vector<InjectionEvent>& injection_events()
      const noexcept {
    return events_;
  }
  /// True if corrupted (primary != shadow) data was injected here, produced
  /// by this rank's computation, or delivered into its memory by a receive.
  [[nodiscard]] bool contaminated() const noexcept { return contaminated_; }
  /// Dynamic op index (unfiltered) at which contamination first occurred;
  /// meaningful only when contaminated().
  [[nodiscard]] std::uint64_t first_contamination_op() const noexcept {
    return first_contamination_op_;
  }

  /// Mark this rank contaminated outside an op (message delivery).
  void note_external_taint() noexcept { mark_contaminated(); }

  // ---- message-payload stream ----------------------------------------------

  /// fsefi::Real elements delivered into this rank by receives so far
  /// (point-to-point and collective-internal alike). This is the sample
  /// space MessagePayload scenarios draw from; golden runs record it.
  [[nodiscard]] std::uint64_t recv_reals() const noexcept {
    return recv_reals_;
  }
  /// Account `n` delivered Real elements (transport delivery hook).
  void add_recv_reals(std::size_t n) noexcept {
    recv_reals_ += static_cast<std::uint64_t>(n);
  }
  /// The next pending payload flip whose delivery index falls in
  /// [base, base + n), consuming it, or nullptr. The caller performs the
  /// flip on element (point->op_index - base) of the delivered span.
  [[nodiscard]] const InjectionPoint* take_payload_flip(
      std::uint64_t base, std::size_t n) noexcept {
    if (!armed_ || next_payload_ >= plan_.payload_points.size()) {
      return nullptr;
    }
    return take_payload_flip_slow(base, n);
  }
  /// Payload flips performed so far.
  [[nodiscard]] std::size_t payload_flips_done() const noexcept {
    return next_payload_;
  }

  // ---- region tracking ------------------------------------------------------

  [[nodiscard]] Region current_region() const noexcept { return region_; }

  // ---- hot path -------------------------------------------------------------

  /// Record one dynamic FP operation and perform any planned bit flips on
  /// the primary operand values (shadows are never flipped). The caller
  /// computes the op on both the primary and shadow values afterwards.
  /// `b`/`b_shadow` are ignored for unary kinds.
  void on_op(OpKind kind, double& a, double& b) {
    // profile_row_ tracks the current region, and `kind` is a constant at
    // every inlined call site, so the count bump is one increment at a
    // fixed offset. Everything else — filtered-stream length, op totals —
    // is derived from the profile when needed.
    ++profile_row_[static_cast<int>(kind)];
    if (state_ == HotState::FastIdle) {
      // No event source (no pending injection, no budget): the whole run
      // for golden passes, the post-injection tail for campaign trials.
      return;
    }
    if (state_ == HotState::FastLive) {
      if (--countdown_ == 0) [[unlikely]] {
        on_event(kind, a, b);
      }
      return;
    }
    reference_on_op(kind, a, b);
  }

  /// How many of the next `max_ops` dynamic operations are guaranteed to
  /// be event-free (no injection can become due, no budget exhaustion).
  /// Blocked kernels run that window as raw arithmetic and account it via
  /// on_block(). Always 0 on the reference path, which forces kernels
  /// through the per-op reference implementation.
  [[nodiscard]] std::uint64_t quiet_ops(std::uint64_t max_ops) const noexcept {
    if (!fast()) return 0;
    const std::uint64_t quiet = countdown_ - 1;  // countdown_ >= 1 invariant
    return max_ops < quiet ? max_ops : quiet;
  }

  /// Account `n` dynamic operations of one kind in the current region at
  /// once. Only valid for ops inside a window returned by quiet_ops():
  /// the caller guarantees no event falls among them, so order within the
  /// block cannot matter and bulk addition is exact.
  void on_block(OpKind kind, std::uint64_t n) noexcept {
    profile_row_[static_cast<int>(kind)] += n;
    countdown_ -= n;
  }

  /// Checkpoint fast-forward (DESIGN.md §9): bulk-adjust the counters to
  /// `target`, an absolute per-(region, kind) profile recorded at a
  /// fault-free boundary of the golden run. Because the fault-free prefix
  /// of a trial is bit-identical to the golden run, jumping the counters
  /// to the recorded values is indistinguishable from having executed the
  /// prefix — injection-point matching and the hang-budget guard both key
  /// off these counts. Valid only before any injection or budget throw
  /// has occurred on this context.
  void fast_forward(const OpCountProfile& target) noexcept;

  /// Called with each op's computed result; flags contamination when the
  /// corrupted execution diverges from the shadow (fault-free) execution.
  void observe_result(double primary, double shadow) noexcept {
    if (!contaminated_ && values_diverge(primary, shadow)) {
      mark_contaminated();
    }
  }

 private:
  friend class RegionScope;

  /// Countdown value meaning "no event armed": far beyond any real run's
  /// op count, so the slow path is never entered.
  static constexpr std::uint64_t kIdleCountdown = std::uint64_t{1} << 62;

  /// Per-op dispatch state, one byte so the hot path branches on a single
  /// load. FastIdle: countdown fast path with nothing armed to fire (no
  /// pending injection point, no budget). FastLive: countdown running.
  /// Reference: RESILIENCE_FAST_REAL=0.
  enum class HotState : std::uint8_t { FastIdle = 0, FastLive = 1,
                                       Reference = 2 };

  [[nodiscard]] bool fast() const noexcept {
    return state_ != HotState::Reference;
  }

  void set_region(Region region) noexcept {
    region_ = region;
    profile_row_ = profile_.counts[static_cast<int>(region)];
  }

  void mark_contaminated() noexcept {
    if (!contaminated_) {
      contaminated_ = true;
      first_contamination_op_ = ops_total();
    }
  }

  /// Cold path of the countdown dispatcher: fires when the conservative
  /// event distance elapses. Throws the hang budget, performs any
  /// injections due at this op, and recomputes the countdown.
  void on_event(OpKind kind, double& a, double& b);

  /// The pre-countdown per-op implementation (RESILIENCE_FAST_REAL=0):
  /// op-total bump, budget check, two mask lookups, and a linear point
  /// match per op. Kept out of line so the fast path stays small enough
  /// to inline.
  void reference_on_op(OpKind kind, double& a, double& b);

  /// countdown_ := min distance (in ops, conservative lower bound) to the
  /// next injection becoming due or the budget running out; >= 1 always.
  void recompute_countdown() noexcept;

  /// Cold path of take_payload_flip: range check, telemetry, consume.
  [[nodiscard]] const InjectionPoint* take_payload_flip_slow(
      std::uint64_t base, std::size_t n) noexcept;

  OpCountProfile profile_{};
  std::uint64_t ops_total_ = 0;
  std::uint64_t filtered_ops_ = 0;
  std::uint64_t op_budget_ = 0;
  std::uint64_t recv_reals_ = 0;

  InjectionPlan plan_{};
  bool armed_ = false;
  std::size_t next_point_ = 0;
  std::size_t next_payload_ = 0;
  std::vector<InjectionEvent> events_;

  bool contaminated_ = false;
  std::uint64_t first_contamination_op_ = 0;

  Region region_ = Region::Common;

  // ---- countdown fast path (see file comment) -----------------------------
  /// Latched from fast_real_enabled() at construction/reset/arm; flips
  /// between FastIdle and FastLive as event sources appear.
  HotState state_ = fast_real_enabled() ? HotState::FastIdle
                                        : HotState::Reference;
  /// profile_.counts row for region_, kept in sync by set_region() so the
  /// per-op count bump needs no region indexing.
  std::uint64_t* profile_row_ = profile_.counts[static_cast<int>(
      Region::Common)];
  std::uint32_t filter_word_ = 0;     ///< filter_word(plan.kinds, plan.regions)
  std::uint64_t countdown_ = kIdleCountdown;
  /// Filtered ops the derived count includes but the reference stream does
  /// not: ops that threw the hang budget (the reference throws before
  /// filter accounting, but the profile cell was already bumped).
  std::uint64_t filtered_bias_ = 0;
};

namespace detail {
/// The per-thread installed context. Inline so every translation unit
/// reads the thread-local slot directly instead of paying an out-of-line
/// call per instrumented operation.
inline thread_local FaultContext* tl_context = nullptr;
}  // namespace detail

/// The context installed on the calling thread, or nullptr when the thread
/// is not running under fault injection (ops then execute uninstrumented).
inline FaultContext* current_context() noexcept { return detail::tl_context; }

/// Install `ctx` on the calling thread; pass nullptr to uninstall.
inline void install_context(FaultContext* ctx) noexcept {
  detail::tl_context = ctx;
}

/// RAII installer for the calling thread.
class ContextGuard {
 public:
  explicit ContextGuard(FaultContext* ctx) noexcept
      : previous_(current_context()) {
    install_context(ctx);
  }
  ~ContextGuard() { install_context(previous_); }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  FaultContext* previous_;
};

/// RAII region marker. Apps wrap their parallel-unique computation
/// (Observation 1) in RegionScope(Region::ParallelUnique) so the injector
/// can attribute dynamic operations — and target injections — per region.
class RegionScope {
 public:
  explicit RegionScope(Region region) noexcept
      : ctx_(current_context()), previous_(Region::Common) {
    if (ctx_ != nullptr) {
      previous_ = ctx_->region_;
      ctx_->set_region(region);
    }
  }
  ~RegionScope() {
    if (ctx_ != nullptr) ctx_->set_region(previous_);
  }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

 private:
  FaultContext* ctx_;
  Region previous_;
};

}  // namespace resilience::fsefi
