// Per-rank fault-injection state: the software analogue of one F-SEFI
// guest VM (paper Section 2).
//
// Exactly one FaultContext is installed per rank thread for the duration
// of an application run. Every instrumented floating-point operation
// reports here: the context counts dynamic operations by (region, kind),
// performs the planned bit flips when their dynamic index comes up, and
// records whether this rank ever touched corrupted data ("contamination",
// the quantity profiled in Figures 1 and 2 of the paper).
//
// Corruption is tracked by *value divergence*, not symbolic taint: every
// fsefi::Real carries a shadow copy that computes the fault-free result
// alongside the (possibly corrupted) primary value. A rank counts as
// contaminated when a value whose primary and shadow bit patterns differ
// is produced by its computation, injected into it, or delivered into its
// memory by a receive. This matches F-SEFI's memory-diff observation
// model, including its most important consequence: a low-order mantissa
// flip whose contribution is rounded away in a long accumulation stops
// propagating — which is why most injections in CG contaminate only one
// MPI process (Figure 1a).
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fsefi/plan.hpp"

namespace resilience::fsefi {

/// Thrown when a rank exceeds its dynamic-operation budget. The budget is
/// the deterministic stand-in for a wall-clock hang detector: a corrupted
/// run that executes many times the fault-free operation count is "hung"
/// and the harness classifies it as a Failure outcome.
class HangBudgetExceeded : public std::runtime_error {
 public:
  HangBudgetExceeded()
      : std::runtime_error("dynamic FP operation budget exceeded (hang)") {}
};

/// True when primary and shadow values diverge. Bit-pattern comparison so
/// that NaN == NaN and +0 != -0 behave as memory diffing would.
inline bool values_diverge(double primary, double shadow) noexcept {
  return std::bit_cast<std::uint64_t>(primary) !=
         std::bit_cast<std::uint64_t>(shadow);
}

/// Record of one performed injection (for debugging and trace analysis:
/// F-SEFI similarly maps each injected instruction back to the
/// application).
struct InjectionEvent {
  std::uint64_t op_total = 0;     ///< unfiltered dynamic op count at injection
  std::uint64_t op_filtered = 0;  ///< index within the filtered stream
  OpKind kind = OpKind::Add;
  Region region = Region::Common;
  std::uint8_t operand = 0;
  std::uint8_t bit = 0;
  std::uint8_t width = 1;
  double value_before = 0.0;
  double value_after = 0.0;
};

class FaultContext {
 public:
  FaultContext() = default;

  // Contexts are pinned per rank; copying one mid-run is always a bug.
  FaultContext(const FaultContext&) = delete;
  FaultContext& operator=(const FaultContext&) = delete;

  /// Install an injection plan for the next run. Clears all counters.
  /// Throws std::invalid_argument if plan.points is not sorted by op_index.
  void arm(InjectionPlan plan);

  /// Clear counters and any armed plan (counting-only mode).
  void reset();

  /// Abort the run (via HangBudgetExceeded) once more than `budget`
  /// instrumented operations execute. 0 disables the guard.
  void set_op_budget(std::uint64_t budget) noexcept { op_budget_ = budget; }

  // ---- observed results ---------------------------------------------------

  [[nodiscard]] const OpCountProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] std::uint64_t ops_total() const noexcept { return ops_total_; }
  /// Number of planned flips actually performed.
  [[nodiscard]] std::size_t injections_done() const noexcept {
    return next_point_;
  }
  /// Trace of performed injections, in execution order.
  [[nodiscard]] const std::vector<InjectionEvent>& injection_events()
      const noexcept {
    return events_;
  }
  /// True if corrupted (primary != shadow) data was injected here, produced
  /// by this rank's computation, or delivered into its memory by a receive.
  [[nodiscard]] bool contaminated() const noexcept { return contaminated_; }
  /// Dynamic op index (unfiltered) at which contamination first occurred;
  /// meaningful only when contaminated().
  [[nodiscard]] std::uint64_t first_contamination_op() const noexcept {
    return first_contamination_op_;
  }

  /// Mark this rank contaminated outside an op (message delivery).
  void note_external_taint() noexcept { mark_contaminated(); }

  // ---- region tracking ------------------------------------------------------

  [[nodiscard]] Region current_region() const noexcept { return region_; }

  // ---- hot path -------------------------------------------------------------

  /// Record one dynamic FP operation and perform any planned bit flips on
  /// the primary operand values (shadows are never flipped). The caller
  /// computes the op on both the primary and shadow values afterwards.
  /// `b`/`b_shadow` are ignored for unary kinds.
  void on_op(OpKind kind, double& a, double& b) {
    const auto region_index = static_cast<int>(region_);
    const auto kind_index = static_cast<int>(kind);
    ++profile_.counts[region_index][kind_index];
    ++ops_total_;
    if (op_budget_ != 0 && ops_total_ > op_budget_) {
      throw HangBudgetExceeded();
    }
    if (armed_ && contains(plan_.kinds, kind) &&
        contains(plan_.regions, region_)) {
      const std::uint64_t idx = filtered_ops_++;
      while (next_point_ < plan_.points.size() &&
             plan_.points[next_point_].op_index == idx) {
        const InjectionPoint& pt = plan_.points[next_point_];
        double& target = (pt.operand == 0) ? a : b;
        const double before = target;
        target = flip_bits(target, pt.bit, pt.width);
        events_.push_back({ops_total_, idx, kind, region_, pt.operand, pt.bit,
                           pt.width, before, target});
        ++next_point_;
        mark_contaminated();
      }
    }
  }

  /// Called with each op's computed result; flags contamination when the
  /// corrupted execution diverges from the shadow (fault-free) execution.
  void observe_result(double primary, double shadow) noexcept {
    if (!contaminated_ && values_diverge(primary, shadow)) {
      mark_contaminated();
    }
  }

 private:
  friend class RegionScope;

  void mark_contaminated() noexcept {
    if (!contaminated_) {
      contaminated_ = true;
      first_contamination_op_ = ops_total_;
    }
  }

  OpCountProfile profile_{};
  std::uint64_t ops_total_ = 0;
  std::uint64_t filtered_ops_ = 0;
  std::uint64_t op_budget_ = 0;

  InjectionPlan plan_{};
  bool armed_ = false;
  std::size_t next_point_ = 0;
  std::vector<InjectionEvent> events_;

  bool contaminated_ = false;
  std::uint64_t first_contamination_op_ = 0;

  Region region_ = Region::Common;
};

/// The context installed on the calling thread, or nullptr when the thread
/// is not running under fault injection (ops then execute uninstrumented).
FaultContext* current_context() noexcept;

/// Install `ctx` on the calling thread; pass nullptr to uninstall.
void install_context(FaultContext* ctx) noexcept;

/// RAII installer for the calling thread.
class ContextGuard {
 public:
  explicit ContextGuard(FaultContext* ctx) noexcept
      : previous_(current_context()) {
    install_context(ctx);
  }
  ~ContextGuard() { install_context(previous_); }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  FaultContext* previous_;
};

/// RAII region marker. Apps wrap their parallel-unique computation
/// (Observation 1) in RegionScope(Region::ParallelUnique) so the injector
/// can attribute dynamic operations — and target injections — per region.
class RegionScope {
 public:
  explicit RegionScope(Region region) noexcept
      : ctx_(current_context()), previous_(Region::Common) {
    if (ctx_ != nullptr) {
      previous_ = ctx_->region_;
      ctx_->region_ = region;
    }
  }
  ~RegionScope() {
    if (ctx_ != nullptr) ctx_->region_ = previous_;
  }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

 private:
  FaultContext* ctx_;
  Region previous_;
};

}  // namespace resilience::fsefi
