#include "fsefi/scenario.hpp"

#include <stdexcept>
#include <string>

namespace resilience::fsefi {

namespace {

constexpr FaultScenario scenario_with(FaultDomain domain, FaultPattern pattern,
                                      ArrivalModel arrival) noexcept {
  FaultScenario s;
  s.domain = domain;
  s.pattern = pattern;
  s.arrival = arrival;
  return s;
}

const ScenarioCatalogEntry kCatalog[] = {
    {"paper", FaultScenario{},
     "the paper's model: single-bit flip in one FP add/mul register "
     "operand at a uniform dynamic-op index"},
    {"register-byte",
     scenario_with(FaultDomain::RegisterOperand, FaultPattern::Byte,
                   ArrivalModel::FixedOpIndex),
     "byte-granularity register corruption: 8 adjacent bits at a byte "
     "boundary of one operand"},
    {"payload",
     scenario_with(FaultDomain::MessagePayload, FaultPattern::SingleBit,
                   ArrivalModel::FixedOpIndex),
     "in-flight message corruption: single-bit flip in one Real element "
     "as a receive delivers it into the target rank"},
    {"state",
     scenario_with(FaultDomain::ResidentState, FaultPattern::SingleBit,
                   ArrivalModel::FixedOpIndex),
     "resident-state corruption: single-bit flip in one live-state Real "
     "at a uniformly drawn iteration boundary"},
    {"poisson",
     scenario_with(FaultDomain::RegisterOperand, FaultPattern::SingleBit,
                   ArrivalModel::PoissonTimeline),
     "multi-fault timeline: single-bit register flips arriving as a "
     "Poisson process over the filtered op stream (>= 1 per trial; MTBF "
     "set by RESILIENCE_MTBF / --mtbf)"},
    {"crash",
     scenario_with(FaultDomain::RegisterOperand, FaultPattern::RankCrash,
                   ArrivalModel::FixedOpIndex),
     "fail-stop: the target rank dies at the drawn dynamic op; surviving "
     "ranks observe the abort mid-collective"},
};

}  // namespace

const char* to_string(FaultDomain domain) noexcept {
  switch (domain) {
    case FaultDomain::RegisterOperand:
      return "register-operand";
    case FaultDomain::MessagePayload:
      return "message-payload";
    case FaultDomain::ResidentState:
      return "resident-state";
  }
  return "?";
}

const char* to_string(ArrivalModel arrival) noexcept {
  switch (arrival) {
    case ArrivalModel::FixedOpIndex:
      return "fixed-op-index";
    case ArrivalModel::PoissonTimeline:
      return "poisson-timeline";
  }
  return "?";
}

std::span<const ScenarioCatalogEntry> scenario_catalog() noexcept {
  return kCatalog;
}

const ScenarioCatalogEntry* find_scenario(std::string_view name) noexcept {
  for (const ScenarioCatalogEntry& entry : kCatalog) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

FaultScenario scenario_by_name(std::string_view name) {
  if (const ScenarioCatalogEntry* entry = find_scenario(name)) {
    return entry->scenario;
  }
  std::string known;
  for (const ScenarioCatalogEntry& entry : kCatalog) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown scenario \"" + std::string(name) +
                              "\" (known: " + known + ")");
}

const char* scenario_name(const FaultScenario& scenario) noexcept {
  for (const ScenarioCatalogEntry& entry : kCatalog) {
    // The catalog names the (domain, pattern, arrival) shape; kind/region
    // filters and the MTBF are per-deployment knobs on top of it.
    if (entry.scenario.domain == scenario.domain &&
        entry.scenario.pattern == scenario.pattern &&
        entry.scenario.arrival == scenario.arrival) {
      return entry.name;
    }
  }
  return "custom";
}

}  // namespace resilience::fsefi
