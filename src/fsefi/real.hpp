// fsefi::Real — an instrumented IEEE-754 double with shadow execution.
//
// This is the reproduction's stand-in for F-SEFI's QEMU-level instruction
// instrumentation: every arithmetic operation on Real
//   1. is counted as one dynamic FP instruction of its kind,
//   2. may have a bit of one operand's primary value flipped if the armed
//      InjectionPlan selected this dynamic operation, and
//   3. computes a shadow (fault-free) result alongside the primary one, so
//      corruption is tracked by actual value divergence. An error whose
//      contribution is numerically absorbed (rounded away in a long sum)
//      stops being corruption — the behaviour a memory-diffing injector
//      like F-SEFI observes, and the reason most CG injections contaminate
//      only one MPI process (paper Figure 1a).
//
// Control flow (comparisons, min/max selection) follows the corrupted
// primary values, as in the real faulty execution; after a control-flow
// divergence the shadow is a per-operation counterfactual rather than a
// replay of the exact fault-free run, which is the standard approximation.
//
// Real is trivially copyable so the simmpi transport can move arrays of it
// between ranks; the shadow travels inside the value and the transport
// reports divergent payloads as contamination on the receiving rank.
//
// Threads not running under a FaultContext (golden runs, unit tests) pay
// one predictable branch per operation and compute exactly like double.
#pragma once

#include <cmath>
#include <cstdlib>
#include <type_traits>

#include "fsefi/fault_context.hpp"

namespace resilience::fsefi {

class Real {
 public:
  constexpr Real() = default;
  // Implicit from double so numeric literals read naturally in app code.
  constexpr Real(double v) noexcept : v_(v), shadow_(v) {}  // NOLINT(google-explicit-constructor)

  /// The value the (possibly corrupted) execution actually computed.
  [[nodiscard]] constexpr double value() const noexcept { return v_; }
  /// The value the fault-free execution would have computed.
  [[nodiscard]] constexpr double shadow() const noexcept { return shadow_; }
  /// True when the primary value has diverged from the fault-free one.
  [[nodiscard]] bool tainted() const noexcept {
    return values_diverge(v_, shadow_);
  }

  /// Construct an explicitly corrupted value (tests and fault-model demos;
  /// campaigns corrupt through injection plans).
  static constexpr Real corrupted(double primary, double shadow) noexcept {
    Real r;
    r.v_ = primary;
    r.shadow_ = shadow;
    return r;
  }

  /// Collapse the shadow onto the primary value (checkers comparing final
  /// outputs, never application math).
  [[nodiscard]] constexpr Real untainted() const noexcept { return Real(v_); }

  // ---- arithmetic (instrumented) ------------------------------------------

  friend Real operator+(Real a, Real b) { return binary(OpKind::Add, a, b); }
  friend Real operator-(Real a, Real b) { return binary(OpKind::Sub, a, b); }
  friend Real operator*(Real a, Real b) { return binary(OpKind::Mul, a, b); }
  friend Real operator/(Real a, Real b) { return binary(OpKind::Div, a, b); }

  Real& operator+=(Real b) { return *this = *this + b; }
  Real& operator-=(Real b) { return *this = *this - b; }
  Real& operator*=(Real b) { return *this = *this * b; }
  Real& operator/=(Real b) { return *this = *this / b; }

  /// Sign flip: not an FP add/mul instruction, so uncounted.
  friend constexpr Real operator-(Real a) noexcept {
    return corrupted(-a.v_, -a.shadow_);
  }
  friend constexpr Real operator+(Real a) noexcept { return a; }

  // ---- comparisons (follow the corrupted execution) -------------------------

  friend constexpr bool operator==(Real a, Real b) noexcept {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Real a, Real b) noexcept {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(Real a, Real b) noexcept {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator>(Real a, Real b) noexcept {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator<=(Real a, Real b) noexcept {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>=(Real a, Real b) noexcept {
    return a.v_ >= b.v_;
  }

  // ---- unary instrumented math ---------------------------------------------

  friend Real sqrt(Real a) {
    if (FaultContext* ctx = current_context()) {
      double dummy = 0.0;
      ctx->on_op(OpKind::Sqrt, a.v_, dummy);
      const Real r = corrupted(std::sqrt(a.v_), std::sqrt(a.shadow_));
      ctx->observe_result(r.v_, r.shadow_);
      return r;
    }
    return corrupted(std::sqrt(a.v_), std::sqrt(a.shadow_));
  }

  /// Magnitude: sign manipulation only, uncounted.
  friend constexpr Real abs(Real a) noexcept {
    return corrupted(a.v_ < 0 ? -a.v_ : a.v_,
                     a.shadow_ < 0 ? -a.shadow_ : a.shadow_);
  }

  /// Selection by the corrupted comparison; the chosen value keeps its own
  /// shadow (control-flow divergence is not tracked).
  friend constexpr Real min(Real a, Real b) noexcept { return b < a ? b : a; }
  friend constexpr Real max(Real a, Real b) noexcept { return a < b ? b : a; }

  friend bool isfinite(Real a) noexcept { return std::isfinite(a.v_); }
  friend bool isnan(Real a) noexcept { return std::isnan(a.v_); }

 private:
  static Real binary(OpKind kind, Real a, Real b) {
    if (FaultContext* ctx = current_context()) {
      ctx->on_op(kind, a.v_, b.v_);
      const Real r =
          corrupted(eval(kind, a.v_, b.v_), eval(kind, a.shadow_, b.shadow_));
      ctx->observe_result(r.v_, r.shadow_);
      return r;
    }
    return corrupted(eval(kind, a.v_, b.v_), eval(kind, a.shadow_, b.shadow_));
  }

  static constexpr double eval(OpKind kind, double a, double b) noexcept {
    switch (kind) {
      case OpKind::Add:
        return a + b;
      case OpKind::Sub:
        return a - b;
      case OpKind::Mul:
        return a * b;
      case OpKind::Div:
        return a / b;
      case OpKind::Sqrt:
        break;  // unary; handled in sqrt(), never dispatched here
    }
    // A kind this switch does not cover (Sqrt, or a future addition whose
    // author forgot this function) must fail loudly, not evaluate to 0.0
    // and silently corrupt every downstream result. Aborting in a
    // constant-evaluated context is ill-formed, so a compile-time misuse
    // fails to build instead.
    std::abort();
  }

  double v_ = 0.0;
  double shadow_ = 0.0;
};

static_assert(std::is_trivially_copyable_v<Real>,
              "Real must be transportable by simmpi");

}  // namespace resilience::fsefi
