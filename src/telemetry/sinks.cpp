#include "telemetry/sinks.hpp"

#include <cinttypes>
#include <stdexcept>

namespace resilience::telemetry {

namespace {

const char* phase_of(TraceEvent::Type type) {
  switch (type) {
    case TraceEvent::Type::SpanBegin:
      return "B";
    case TraceEvent::Type::SpanEnd:
      return "E";
    case TraceEvent::Type::Instant:
      return "i";
  }
  return "i";
}

}  // namespace

JsonLinesSink::JsonLinesSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
}

JsonLinesSink::~JsonLinesSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonLinesSink::consume(const TraceEvent& event) {
  // Names are static identifier-style strings — no escaping needed.
  std::fprintf(file_,
               "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\",\"tid\":%" PRIu32
               ",\"ts_ns\":%" PRIu64,
               event.category, event.name, phase_of(event.type), event.tid,
               event.ts_ns);
  if (event.arg_name != nullptr) {
    std::fprintf(file_, ",\"%s\":%" PRIu64, event.arg_name, event.arg);
  }
  std::fputs("}\n", file_);
}

void JsonLinesSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void ChromeTraceSink::flush() {
  std::FILE* file = std::fopen(path_.c_str(), "w");
  if (file == nullptr) {
    throw std::runtime_error("cannot open trace file: " + path_);
  }
  std::fputs("{\"traceEvents\":[", file);
  bool first = true;
  for (const TraceEvent& event : events_) {
    std::fprintf(file,
                 "%s\n{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\","
                 "\"pid\":1,\"tid\":%" PRIu32 ",\"ts\":%.3f",
                 first ? "" : ",", event.category, event.name,
                 phase_of(event.type), event.tid,
                 static_cast<double>(event.ts_ns) / 1000.0);
    if (event.type == TraceEvent::Type::Instant) {
      std::fputs(",\"s\":\"t\"", file);  // thread-scoped instant
    }
    if (event.arg_name != nullptr) {
      std::fprintf(file, ",\"args\":{\"%s\":%" PRIu64 "}", event.arg_name,
                   event.arg);
    }
    std::fputs("}", file);
    first = false;
  }
  std::fputs("\n]}\n", file);
  std::fclose(file);
}

util::Json metrics_to_json(const MetricsSnapshot& snapshot) {
  util::JsonObject counters;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (snapshot.counters[i] != 0) {
      counters[name(static_cast<Counter>(i))] = snapshot.counters[i];
    }
  }
  util::JsonObject histograms;
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const HistogramData& data = snapshot.histograms[i];
    const std::uint64_t total = data.total();
    if (total == 0) continue;
    util::JsonArray buckets;
    buckets.reserve(kHistogramBuckets);
    for (auto b : data.buckets) buckets.emplace_back(b);
    histograms[name(static_cast<Histogram>(i))] = util::JsonObject{
        {"buckets", std::move(buckets)}, {"total", total}};
  }
  return util::JsonObject{{"schema", "resilience-metrics/1"},
                          {"counters", std::move(counters)},
                          {"histograms", std::move(histograms)}};
}

MetricsSnapshot metrics_from_json(const util::Json& json) {
  if (json.at("schema").as_string() != "resilience-metrics/1") {
    throw util::JsonError("unsupported metrics schema");
  }
  MetricsSnapshot snapshot;
  for (const auto& [counter_name, value] : json.at("counters").as_object()) {
    bool known = false;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      if (counter_name == name(static_cast<Counter>(i))) {
        snapshot.counters[i] = static_cast<std::uint64_t>(value.as_int());
        known = true;
        break;
      }
    }
    if (!known) throw util::JsonError("unknown counter: " + counter_name);
  }
  for (const auto& [hist_name, value] : json.at("histograms").as_object()) {
    bool known = false;
    for (std::size_t i = 0; i < kHistogramCount; ++i) {
      if (hist_name != name(static_cast<Histogram>(i))) continue;
      const auto& buckets = value.at("buckets").as_array();
      if (buckets.size() != kHistogramBuckets) {
        throw util::JsonError("histogram has the wrong bucket count");
      }
      std::uint64_t total = 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        snapshot.histograms[i].buckets[b] =
            static_cast<std::uint64_t>(buckets[b].as_int());
        total += snapshot.histograms[i].buckets[b];
      }
      if (total != static_cast<std::uint64_t>(value.at("total").as_int())) {
        throw util::JsonError("histogram total does not match its buckets");
      }
      known = true;
      break;
    }
    if (!known) throw util::JsonError("unknown histogram: " + hist_name);
  }
  return snapshot;
}

}  // namespace resilience::telemetry
