// Structured telemetry: a low-overhead metrics registry and a trace layer
// (DESIGN.md §10).
//
// The four execution layers (simmpi, fsefi, harness, core) report named
// monotonic counters and histograms into the *metric scope stack* of the
// current thread, and emit spans/events into the process-wide trace
// session. Both facilities are execution-policy-only: campaign and study
// results are bit-identical with telemetry on, off, or at any verbosity,
// because instrumentation only ever observes — it never feeds back into
// control flow.
//
// Cost model:
//  - Disabled metrics cost one branch on a cached atomic per call site
//    (`metrics_enabled()`), and the instrumented floating-point per-op
//    path carries no telemetry calls at all (bench_micro_substrate's
//    telemetry legs gate this at <= 5% on Real-axpy).
//  - Enabled counters are lock-free: each (scope, thread) pair owns a
//    private shard of plain relaxed-atomic slots — single-writer, so an
//    increment is a load+store, no RMW, no contention — merged under the
//    scope's mutex only when a campaign snapshots at the end.
//  - Tracing is off until a TraceSession starts (one branch on a cached
//    atomic); when on, events pay a timestamp and one short critical
//    section in the sink.
//
// Scoping: a MetricScope delimits an accounting domain (one campaign, one
// study). Scopes form a rollup chain — a campaign scope created with the
// study scope as parent folds its totals into the parent when it dies —
// and the *stack* of active scopes is thread-local, propagated across the
// simmpi job launch onto rank threads via AdoptScopeStack so substrate
// counters (mailbox waits, pool reuse) land in the campaign that caused
// them.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace resilience::telemetry {

// ---- counter & histogram vocabulary ---------------------------------------

/// Every named monotonic counter, one id per name so the hot path indexes
/// an array instead of hashing strings. Grouped by the layer that emits.
enum class Counter : std::uint16_t {
  // simmpi — simulated MPI substrate
  SimmpiJobs,             ///< Runtime::run invocations
  SimmpiBufferAllocs,     ///< envelope payloads freshly heap-allocated
  SimmpiBufferReuses,     ///< envelope payloads recycled from freelists
  SimmpiMailboxWaits,     ///< receives that blocked before a match arrived
  SimmpiFusedCollectives, ///< fused collective combines executed
  SimmpiTeamCheckouts,    ///< rank-team pool checkouts
  SimmpiTeamSpawns,       ///< rank teams freshly spawned (pool misses)
  // fsefi — fault injector
  FsefiDispatchFastIdle,  ///< contexts armed/reset into the FastIdle state
  FsefiDispatchFastLive,  ///< contexts armed/reset into the FastLive state
  FsefiDispatchReference, ///< contexts armed/reset onto the reference path
  FsefiCountdownRefills,  ///< cold on_event firings (countdown recomputes)
  FsefiInjections,        ///< bit flips actually performed
  FsefiBudgetThrows,      ///< hang-budget aborts thrown
  // harness — campaign execution
  HarnessTrials,             ///< fault-injection trials completed
  HarnessGoldenProfiles,     ///< golden (fault-free) profiling runs
  HarnessGoldenHits,         ///< golden-cache requests served from an entry
  HarnessGoldenMisses,       ///< golden-cache requests that had to profile
  HarnessGoldenWaits,        ///< hits that blocked on an in-flight leader
  HarnessCheckpointRestores, ///< trials resumed from a stored boundary
  HarnessEarlyExits,         ///< trials pruned by digest reconvergence
  HarnessDeadlockAborts,     ///< trials ended by the deadlock detector
  HarnessHangAborts,         ///< trials ended by the op-budget hang guard
  HarnessCampaigns,          ///< campaigns run
  CampaignTrialsSaved,       ///< requested-minus-executed trials of
                             ///< adaptive campaigns (early-stopping win)
  CampaignStrata,            ///< non-empty strata sampled by adaptive
                             ///< campaigns (1 per unstratified campaign)
  // core — study pipeline
  CoreStudies,            ///< run_study invocations
  CoreStudyPhases,        ///< study phases executed
  // shard — multi-process campaign sharding + on-disk golden store
  ShardUnitsDispatched,   ///< work units sent to worker processes
  ShardWorkerRestarts,    ///< workers respawned after EOF/timeout
  GoldenStoreHits,        ///< golden runs served from the on-disk store
  GoldenStoreMisses,      ///< store lookups that found no usable file
  GoldenStoreLockTakeovers,  ///< stale fill locks broken after the poll
                             ///< budget (a crashed filler's leftovers)
  GoldenStoreRefills,     ///< corrupt/truncated store files unlinked so
                          ///< the next fill starts clean
  // scenario — fault-scenario catalog injection mechanisms
  ScenarioPayloadFlips,   ///< message-payload bit flips performed
  ScenarioStateFlips,     ///< resident-state bit flips performed
  ScenarioRankCrashes,    ///< fail-stop rank deaths injected
  kCount
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Histograms: fixed 64-bucket layouts so shards stay POD and merging is a
/// plain sum. The bucketing rule is per-histogram (see bucket_of).
enum class Histogram : std::uint16_t {
  HarnessTrialOps,           ///< log2 buckets of per-trial total dynamic ops
  HarnessContaminatedRanks,  ///< linear buckets of ranks contaminated/trial
  kCount
};
inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(Histogram::kCount);
inline constexpr std::size_t kHistogramBuckets = 64;

/// Stable dotted name of a counter/histogram ("harness.trials").
[[nodiscard]] const char* name(Counter c) noexcept;
[[nodiscard]] const char* name(Histogram h) noexcept;

/// A counter is *logical* when its value is a deterministic function of
/// (app, configuration, seed) — independent of scheduling, timing, and
/// worker count. The determinism test suite compares exactly the logical
/// subset; timing-born counters (mailbox waits, buffer allocs, cache
/// waits, team spawns) are diagnostics only.
[[nodiscard]] bool is_logical(Counter c) noexcept;

/// Bucket index a recorded value falls into.
[[nodiscard]] constexpr std::size_t bucket_of(Histogram h,
                                              std::uint64_t value) noexcept {
  if (h == Histogram::HarnessTrialOps) {
    // log2 buckets: 0 -> 0, otherwise bit_width (1..64) clamped.
    const auto w = static_cast<std::size_t>(std::bit_width(value));
    return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
  }
  return value < kHistogramBuckets ? static_cast<std::size_t>(value)
                                   : kHistogramBuckets - 1;
}

struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (auto b : buckets) n += b;
    return n;
  }
  friend bool operator==(const HistogramData&,
                         const HistogramData&) = default;
};

/// A merged, immutable view of one scope's counters — the value type
/// campaign/study results carry. Plain arrays: cheap to copy, never part
/// of any serialized result schema.
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<HistogramData, kHistogramCount> histograms{};

  [[nodiscard]] std::uint64_t value(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  /// Lookup by dotted name; 0 for unknown names.
  [[nodiscard]] std::uint64_t value(std::string_view counter_name) const noexcept;
  [[nodiscard]] const HistogramData& histogram(Histogram h) const noexcept {
    return histograms[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] bool empty() const noexcept;
  void add(const MetricsSnapshot& other) noexcept;
  /// Equality over the logical counters and all histograms (see
  /// is_logical) — the determinism contract.
  [[nodiscard]] bool logical_equal(const MetricsSnapshot& other) const noexcept;
};

// ---- enablement ------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_metrics_enabled;  // default true
extern std::atomic<bool> g_trace_enabled;    // true while a session runs
}  // namespace detail

/// Metrics collection switch (default on — counters are cheap and feed the
/// campaign/study diagnostic fields). The disabled path is one branch on
/// this cached atomic at every call site.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled) noexcept;

/// True while a TraceSession is active.
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// ---- metric scopes ---------------------------------------------------------

class MetricScope;

namespace detail {

/// One (scope, thread) counter bank. Single-writer: only the owning thread
/// increments, so the increment is a relaxed load+store (no RMW); readers
/// (snapshot) see a consistent-enough view once the writers quiesced.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>,
             kHistogramCount>
      histograms{};

  void add(Counter c, std::uint64_t n) noexcept {
    auto& slot = counters[static_cast<std::size_t>(c)];
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }
  void record(Histogram h, std::uint64_t value) noexcept {
    auto& slot =
        histograms[static_cast<std::size_t>(h)][bucket_of(h, value)];
    slot.store(slot.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }
};

struct ScopeNode {
  Shard* shard = nullptr;
  ScopeNode* parent = nullptr;
  /// Owning scope, so AdoptScopeStack can resolve a fresh shard for each
  /// adopting thread (shards are single-writer).
  MetricScope* scope = nullptr;
};

// constinit: guarantees constant initialization so cross-TU access does
// not route through the TLS init wrapper (which UBSan flags as a
// potential null reference and which would put a guard check on the
// metrics hot path).
extern thread_local constinit ScopeNode* tl_scope_top;

// ---- lanes ----
// A *lane* is the unit of shard ownership: a small process-unique id for
// one logical execution context. A plain thread lazily allocates a lane
// on first use and keeps it forever; a fiber gets a fresh lane at
// creation, carried across worker threads by the scheduler's TLS
// migration (the lane and the scope stack are registered fiber-local
// slots). Keying shards by lane instead of std::thread::id is what keeps
// the single-writer shard invariant valid when a fiber suspends on one
// worker and resumes on another: the shard follows the lane, the lane
// follows the fiber, and the scheduler mutex orders the handoff.
[[nodiscard]] std::uint64_t current_lane() noexcept;
void set_current_lane(std::uint64_t lane) noexcept;
[[nodiscard]] std::uint64_t new_lane() noexcept;

}  // namespace detail

/// An accounting domain: one campaign, one study. Counts recorded while a
/// ScopeGuard for this scope is the innermost on the thread's stack land
/// in this scope; when the scope dies it folds its totals into `parent`
/// (if any), so campaign scopes roll up into their study scope exactly
/// once.
class MetricScope {
 public:
  explicit MetricScope(MetricScope* parent = nullptr) : parent_(parent) {}
  ~MetricScope();
  MetricScope(const MetricScope&) = delete;
  MetricScope& operator=(const MetricScope&) = delete;

  /// Merge all shards. Call only when writers have quiesced (after the
  /// executor/job joins) for exact totals.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The calling lane's shard in this scope (created on first use). A
  /// lane is a thread — or a fiber, wherever it currently runs.
  [[nodiscard]] detail::Shard* shard_for_current_lane();

  /// Fold an externally produced snapshot — a shard worker process's
  /// counters arriving over the wire — into this scope, attributed to the
  /// calling lane. Unlike count()/record() this adds raw histogram
  /// buckets, so a worker's observations keep their exact distribution.
  void absorb(const MetricsSnapshot& snapshot) noexcept;

 private:
  void fold(const MetricsSnapshot& child) noexcept;

  MetricScope* parent_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::Shard>> shards_;
  std::unordered_map<std::uint64_t, detail::Shard*> by_lane_;
};

/// RAII: makes `scope` the innermost accounting domain of this thread.
class ScopeGuard {
 public:
  explicit ScopeGuard(MetricScope* scope) {
    if (scope == nullptr) return;
    node_.shard = scope->shard_for_current_lane();
    node_.scope = scope;
    node_.parent = detail::tl_scope_top;
    // Storing a stack address in a thread-local is the point of the RAII
    // guard: the destructor pops it before the node dies.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdangling-pointer"
#endif
    detail::tl_scope_top = &node_;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    pushed_ = true;
  }
  ~ScopeGuard() {
    if (pushed_) detail::tl_scope_top = node_.parent;
  }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  detail::ScopeNode node_;
  bool pushed_ = false;
};

/// The scope stack of the calling thread, as an opaque handle a job
/// launcher can capture and re-establish on worker/rank threads. The
/// nodes live on the capturing thread's stack: valid only while that
/// thread blocks on the job.
struct ScopeStackHandle {
  detail::ScopeNode* head = nullptr;
};
[[nodiscard]] inline ScopeStackHandle current_scope_stack() noexcept {
  return {detail::tl_scope_top};
}

/// Re-establish a captured scope stack on this thread (rank threads of a
/// simmpi job). Shards are resolved per-thread, so adopted counts stay
/// lock-free. No-op when the captured stack is already active (the
/// single-rank inline path runs on the capturing thread itself).
class AdoptScopeStack {
 public:
  explicit AdoptScopeStack(ScopeStackHandle handle);
  ~AdoptScopeStack();
  AdoptScopeStack(const AdoptScopeStack&) = delete;
  AdoptScopeStack& operator=(const AdoptScopeStack&) = delete;

 private:
  static constexpr std::size_t kMaxDepth = 8;
  std::array<detail::ScopeNode, kMaxDepth> nodes_{};
  std::size_t depth_ = 0;
  bool adopted_ = false;
};

// ---- recording -------------------------------------------------------------

/// Add `n` to counter `c` in this thread's innermost scope (a no-op with
/// no scope active). Ancestor scopes receive the count exactly once,
/// through the fold-at-destruction chain — recording into every stacked
/// scope here would double counts wherever a campaign guard sits above
/// its study's guard on the same thread. One branch when metrics are
/// disabled; a lock-free shard add when enabled.
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (!metrics_enabled()) return;
  if (detail::ScopeNode* top = detail::tl_scope_top; top != nullptr) {
    top->shard->add(c, n);
  }
}

/// Record one histogram observation in this thread's innermost scope
/// (rolled up to ancestors at scope destruction, like count()).
inline void record(Histogram h, std::uint64_t value) noexcept {
  if (!metrics_enabled()) return;
  if (detail::ScopeNode* top = detail::tl_scope_top; top != nullptr) {
    top->shard->record(h, value);
  }
}

// ---- tracing ---------------------------------------------------------------

struct TraceEvent {
  enum class Type : std::uint8_t { SpanBegin, SpanEnd, Instant };
  const char* category = "";       ///< static string ("harness", "simmpi", ...)
  const char* name = "";           ///< static string ("campaign", "trial", ...)
  Type type = Type::Instant;
  std::uint32_t tid = 0;           ///< small per-thread id, stable per thread
  std::uint64_t ts_ns = 0;         ///< nanoseconds since session start
  const char* arg_name = nullptr;  ///< static string; nullptr = no argument
  std::uint64_t arg = 0;
};

/// Where trace events go. consume() runs under the session lock — sinks
/// need no synchronization of their own. flush() is called once at stop.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Process-wide trace session. start() flips the cached trace_enabled()
/// atomic; every span/event recorded anywhere in the process streams into
/// the sink until stop() flushes and tears it down.
class TraceSession {
 public:
  static void start(std::shared_ptr<TraceSink> sink);
  static void stop();
};

namespace detail {
/// Out-of-line emit: timestamps, assigns the thread id, forwards to the
/// session sink. Call sites check trace_enabled() first so the disabled
/// path never pays the call.
void trace_emit(const char* category, const char* event_name,
                TraceEvent::Type type, const char* arg_name,
                std::uint64_t arg) noexcept;
}  // namespace detail

/// Emit an instant event ("injection", "early_exit", ...).
inline void trace_instant(const char* category, const char* event_name,
                          const char* arg_name = nullptr,
                          std::uint64_t arg = 0) noexcept {
  if (!trace_enabled()) return;
  detail::trace_emit(category, event_name, TraceEvent::Type::Instant,
                     arg_name, arg);
}

/// RAII span over a phase/campaign/trial. Arms at construction: a session
/// starting mid-span contributes no begin, and the destructor stays
/// silent, so sinks always see balanced begin/end pairs.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* span_name,
            const char* arg_name = nullptr, std::uint64_t arg = 0) noexcept
      : category_(category), name_(span_name) {
    if (!trace_enabled()) return;
    armed_ = true;
    detail::trace_emit(category_, name_, TraceEvent::Type::SpanBegin,
                       arg_name, arg);
  }
  ~TraceSpan() {
    if (armed_) {
      detail::trace_emit(category_, name_, TraceEvent::Type::SpanEnd,
                         nullptr, 0);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* category_;
  const char* name_;
  bool armed_ = false;
};

}  // namespace resilience::telemetry
