#include "telemetry/telemetry.hpp"

#include <chrono>
#include <cstring>

#include "util/fiber_tls.hpp"

namespace resilience::telemetry {

namespace {

constexpr const char* kCounterNames[kCounterCount] = {
    "simmpi.jobs",
    "simmpi.buffer_allocs",
    "simmpi.buffer_reuses",
    "simmpi.mailbox_waits",
    "simmpi.fused_collectives",
    "simmpi.team_checkouts",
    "simmpi.team_spawns",
    "fsefi.dispatch_fast_idle",
    "fsefi.dispatch_fast_live",
    "fsefi.dispatch_reference",
    "fsefi.countdown_refills",
    "fsefi.injections",
    "fsefi.budget_throws",
    "harness.trials",
    "harness.golden_profiles",
    "harness.golden_hits",
    "harness.golden_misses",
    "harness.golden_waits",
    "harness.checkpoint_restores",
    "harness.early_exits",
    "harness.deadlock_aborts",
    "harness.hang_aborts",
    "harness.campaigns",
    "campaign.trials_saved",
    "campaign.strata",
    "core.studies",
    "core.study_phases",
    "shard.units_dispatched",
    "shard.worker_restarts",
    "golden_store.hits",
    "golden_store.misses",
    "golden_store.lock_takeovers",
    "golden_store.refills",
    "scenario.payload_flips",
    "scenario.state_flips",
    "scenario.rank_crashes",
};

constexpr const char* kHistogramNames[kHistogramCount] = {
    "harness.trial_ops",
    "harness.contaminated_ranks",
};

// Counters whose values depend on scheduling/timing rather than on
// (app, configuration, seed). Everything else is logical: reproducible
// run to run and independent of worker count.
//
// The per-op fsefi stream counters (refills, injections, budget throws)
// and the fused collective combines are deterministic on a healthy rank,
// but in an aborted job the *surviving* ranks wind down at whichever
// blocking call first observes the abort token — a race — so their tails
// vary run to run. Only arm-time and whole-trial counters stay exact.
constexpr bool kTimingBorn[kCounterCount] = {
    /*SimmpiJobs*/ false,
    /*SimmpiBufferAllocs*/ true,   // freelist warmth is timing-dependent
    /*SimmpiBufferReuses*/ true,
    /*SimmpiMailboxWaits*/ true,   // whether a recv blocks is a race
    /*SimmpiFusedCollectives*/ true,  // fibers-mode-only; abort tails vary
    /*SimmpiTeamCheckouts*/ true,  // scheduler-mode-dependent (fibers lease
                                   // one worker team, threads one per job)
    /*SimmpiTeamSpawns*/ true,     // pool hit/miss depends on interleaving
    /*FsefiDispatchFastIdle*/ false,
    /*FsefiDispatchFastLive*/ false,
    /*FsefiDispatchReference*/ false,
    /*FsefiCountdownRefills*/ true,   // abort winding-down tails vary
    /*FsefiInjections*/ true,         // a racing abort can preempt a flip
    /*FsefiBudgetThrows*/ true,       // ditto for the budget guard
    /*HarnessTrials*/ false,
    /*HarnessGoldenProfiles*/ false,  // single-flight: one per distinct key
    /*HarnessGoldenHits*/ true,    // hit/miss/wait split races between
    /*HarnessGoldenMisses*/ true,  // overlapping study phases
    /*HarnessGoldenWaits*/ true,
    /*HarnessCheckpointRestores*/ false,
    /*HarnessEarlyExits*/ false,
    /*HarnessDeadlockAborts*/ true,  // wall-clock watchdog
    /*HarnessHangAborts*/ false,     // op-budget guard is deterministic
    /*HarnessCampaigns*/ false,
    // The adaptive engine's stop decisions are evaluated at deterministic
    // batch boundaries on merged tallies, so both adaptive counters are a
    // pure function of (app, configuration, seed) — logical, and part of
    // the determinism contract. With adaptive off they are zero on both
    // sides of every diff, so adaptive-off comparisons stay clean.
    /*CampaignTrialsSaved*/ false,
    /*CampaignStrata*/ false,
    /*CoreStudies*/ false,
    /*CoreStudyPhases*/ false,
    // Sharding is an execution policy: unit and restart counts depend on
    // the shard count and on crash/respawn timing, and store hit/miss
    // splits depend on what earlier invocations left on disk — none of it
    // is a function of (app, configuration, seed), so a sharded run stays
    // logical_equal to the single-process run.
    /*ShardUnitsDispatched*/ true,
    /*ShardWorkerRestarts*/ true,
    /*GoldenStoreHits*/ true,
    /*GoldenStoreMisses*/ true,
    /*GoldenStoreLockTakeovers*/ true,
    /*GoldenStoreRefills*/ true,
    // Scenario injections are deterministic per trial, but — like
    // FsefiInjections — a racing abort (hang budget, crash teardown) can
    // preempt a pending flip on a surviving rank, so the tails vary.
    /*ScenarioPayloadFlips*/ true,
    /*ScenarioStateFlips*/ true,
    /*ScenarioRankCrashes*/ true,
};

}  // namespace

const char* name(Counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

const char* name(Histogram h) noexcept {
  return kHistogramNames[static_cast<std::size_t>(h)];
}

bool is_logical(Counter c) noexcept {
  return !kTimingBorn[static_cast<std::size_t>(c)];
}

std::uint64_t MetricsSnapshot::value(std::string_view counter_name) const
    noexcept {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (counter_name == kCounterNames[i]) return counters[i];
  }
  return 0;
}

bool MetricsSnapshot::empty() const noexcept {
  for (auto v : counters) {
    if (v != 0) return false;
  }
  for (const auto& h : histograms) {
    if (h.total() != 0) return false;
  }
  return true;
}

void MetricsSnapshot::add(const MetricsSnapshot& other) noexcept {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters[i] += other.counters[i];
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      histograms[i].buckets[b] += other.histograms[i].buckets[b];
    }
  }
}

bool MetricsSnapshot::logical_equal(const MetricsSnapshot& other) const
    noexcept {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (is_logical(static_cast<Counter>(i)) &&
        counters[i] != other.counters[i]) {
      return false;
    }
  }
  return histograms == other.histograms;
}

// ---- enablement ------------------------------------------------------------

namespace detail {
std::atomic<bool> g_metrics_enabled{true};
std::atomic<bool> g_trace_enabled{false};
thread_local constinit ScopeNode* tl_scope_top = nullptr;

namespace {
std::atomic<std::uint64_t> g_next_lane{1};
thread_local constinit std::uint64_t tl_lane = 0;  // 0 = not yet assigned
}  // namespace

std::uint64_t new_lane() noexcept {
  return g_next_lane.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_lane() noexcept {
  if (tl_lane == 0) tl_lane = new_lane();
  return tl_lane;
}

void set_current_lane(std::uint64_t lane) noexcept { tl_lane = lane; }

}  // namespace detail

namespace {

// Fiber-local slots: the scope stack and the lane follow a fiber across
// worker threads. The scope-stack nodes live on the fiber's own stack
// (ScopeGuard / AdoptScopeStack frames), so migrating the head pointer is
// sufficient; the lane makes the migrated fiber keep writing the same
// single-writer shards it resolved earlier.
[[maybe_unused]] const std::size_t g_scope_stack_slot =
    util::FiberTlsRegistry::add({
        []() noexcept -> void* { return detail::tl_scope_top; },
        [](void* v) noexcept {
          detail::tl_scope_top = static_cast<detail::ScopeNode*>(v);
        },
        nullptr,
    });

[[maybe_unused]] const std::size_t g_lane_slot = util::FiberTlsRegistry::add({
    []() noexcept -> void* {
      return reinterpret_cast<void*>(
          static_cast<std::uintptr_t>(detail::tl_lane));
    },
    [](void* v) noexcept {
      detail::set_current_lane(
          static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(v)));
    },
    []() noexcept -> void* {
      return reinterpret_cast<void*>(
          static_cast<std::uintptr_t>(detail::new_lane()));
    },
});

}  // namespace

void set_metrics_enabled(bool enabled) noexcept {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---- metric scopes ---------------------------------------------------------

MetricScope::~MetricScope() {
  if (parent_ == nullptr) return;
  const MetricsSnapshot totals = snapshot();
  if (!totals.empty()) parent_->fold(totals);
}

MetricsSnapshot MetricScope::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      out.counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kHistogramCount; ++i) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.histograms[i].buckets[b] +=
            shard->histograms[i][b].load(std::memory_order_relaxed);
      }
    }
  }
  return out;
}

detail::Shard* MetricScope::shard_for_current_lane() {
  const std::uint64_t lane = detail::current_lane();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_lane_.find(lane);
  if (it != by_lane_.end()) return it->second;
  shards_.push_back(std::make_unique<detail::Shard>());
  detail::Shard* shard = shards_.back().get();
  by_lane_.emplace(lane, shard);
  return shard;
}

void MetricScope::absorb(const MetricsSnapshot& snapshot) noexcept {
  fold(snapshot);
}

void MetricScope::fold(const MetricsSnapshot& child) noexcept {
  detail::Shard* shard = shard_for_current_lane();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (child.counters[i] != 0) {
      shard->add(static_cast<Counter>(i), child.counters[i]);
    }
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n = child.histograms[i].buckets[b];
      if (n != 0) {
        auto& slot = shard->histograms[i][b];
        slot.store(slot.load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
      }
    }
  }
}

AdoptScopeStack::AdoptScopeStack(ScopeStackHandle handle) {
  if (handle.head == nullptr || detail::tl_scope_top == handle.head) return;
  // Walk the captured stack outermost-first so this thread's stack mirrors
  // the capturing thread's nesting order.
  std::array<detail::ScopeNode*, kMaxDepth> captured{};
  std::size_t n = 0;
  for (detail::ScopeNode* s = handle.head; s != nullptr && n < kMaxDepth;
       s = s->parent) {
    captured[n++] = s;
  }
  for (std::size_t i = n; i > 0; --i) {
    detail::ScopeNode& node = nodes_[depth_];
    // A fresh shard per adopting lane: the captured node's shard is the
    // capturing context's private bank, and several ranks adopt the same
    // stack concurrently — sharing it would break single-writer.
    node.scope = captured[i - 1]->scope;
    node.shard = node.scope->shard_for_current_lane();
    node.parent = detail::tl_scope_top;
    detail::tl_scope_top = &node;
    ++depth_;
  }
  adopted_ = true;
}

AdoptScopeStack::~AdoptScopeStack() {
  if (!adopted_) return;
  for (std::size_t i = 0; i < depth_; ++i) {
    detail::tl_scope_top = detail::tl_scope_top->parent;
  }
}

// ---- tracing ---------------------------------------------------------------

namespace {

struct TraceState {
  std::mutex mu;
  std::shared_ptr<TraceSink> sink;
  std::chrono::steady_clock::time_point epoch;
  std::atomic<std::uint32_t> next_tid{1};
};

TraceState& trace_state() {
  static TraceState state;
  return state;
}

std::uint32_t current_tid() {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) {
    tid = trace_state().next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tid;
}

}  // namespace

void TraceSession::start(std::shared_ptr<TraceSink> sink) {
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sink = std::move(sink);
  state.epoch = std::chrono::steady_clock::now();
  detail::g_trace_enabled.store(state.sink != nullptr,
                                std::memory_order_relaxed);
}

void TraceSession::stop() {
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mu);
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
  if (state.sink) {
    state.sink->flush();
    state.sink.reset();
  }
}

namespace detail {

void trace_emit(const char* category, const char* event_name,
                TraceEvent::Type type, const char* arg_name,
                std::uint64_t arg) noexcept {
  TraceState& state = trace_state();
  TraceEvent event;
  event.category = category;
  event.name = event_name;
  event.type = type;
  event.tid = current_tid();
  event.arg_name = arg_name;
  event.arg = arg;
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.sink) return;  // stopped between the check and here
  event.ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state.epoch)
          .count());
  state.sink->consume(event);
}

}  // namespace detail

}  // namespace resilience::telemetry
