// Pluggable trace sinks and metrics serialization (DESIGN.md §10).
//
// All sinks are driven by the TraceSession under its lock — they need no
// synchronization of their own. Event/category/argument names are static
// strings, so sinks may store pointers without copying.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace resilience::telemetry {

/// Collects events in memory — the sink the test suites inspect.
class MemorySink : public TraceSink {
 public:
  void consume(const TraceEvent& event) override { events_.push_back(event); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Streams one JSON object per line (JSON Lines). Line schema:
///   {"cat": "...", "name": "...", "ph": "B|E|i", "tid": N, "ts_ns": N
///    [, "<arg_name>": N]}
/// Events are written as they arrive, so a trace of a crashed run is
/// still readable up to the crash.
class JsonLinesSink : public TraceSink {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonLinesSink(const std::string& path);
  ~JsonLinesSink() override;

  void consume(const TraceEvent& event) override;
  void flush() override;

 private:
  std::FILE* file_;
};

/// Buffers events and writes one Chrome trace_event document at flush:
///   {"traceEvents": [{"cat","name","ph","pid","tid","ts",...}, ...]}
/// Load the file in chrome://tracing or https://ui.perfetto.dev.
/// Timestamps are microseconds (the trace_event unit), as doubles to keep
/// sub-microsecond ordering.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::string path) : path_(std::move(path)) {}

  void consume(const TraceEvent& event) override { events_.push_back(event); }
  void flush() override;

 private:
  std::string path_;
  std::vector<TraceEvent> events_;
};

/// The metrics dump the CLI writes for --metrics:
///   {"schema": "resilience-metrics/1",
///    "counters": {"simmpi.jobs": N, ...},          // non-zero only
///    "histograms": {"harness.trial_ops":
///        {"buckets": [...], "total": N}, ...}}     // non-empty only
[[nodiscard]] util::Json metrics_to_json(const MetricsSnapshot& snapshot);

/// Inverse of metrics_to_json — the shard wire protocol ships snapshots
/// as JSON and the coordinator folds them back. Throws util::JsonError on
/// an unknown counter/histogram name or a malformed document (both ends
/// of the wire are the same binary, so drift is a bug, not a compat
/// case).
[[nodiscard]] MetricsSnapshot metrics_from_json(const util::Json& json);

}  // namespace resilience::telemetry
